package mmu

import (
	"mixtlb/internal/cachesim"
	"mixtlb/internal/pagetable"
)

// Design names the TLB organizations compared in the evaluation (Sec 7.2).
// Each constant is the registry name of a builtin DesignSpec; Build is a
// registry lookup, so the constants, CLI flags, and design files all draw
// from the same declarative catalog.
type Design string

// The design points. All are area-equivalent to the split baseline at the
// L1 (about 100 entries) and L2 (about 544 entries), except where a
// design's own overheads (skew timestamps) or savings (MIX absorbing the
// separate 1GB TLB) change the entry budget, as the paper describes.
const (
	// DesignSplit is the commercial Haswell-style baseline.
	DesignSplit Design = "split"
	// DesignMix is the paper's contribution.
	DesignMix Design = "mix"
	// DesignMixColt is MIX plus small-page coalescing (Fig 18's best).
	DesignMixColt Design = "mix+colt"
	// DesignRehash is hash-rehash for all sizes with the best predictor.
	DesignRehash Design = "rehash+pred"
	// DesignSkew is a skew-associative TLB with the best predictor.
	DesignSkew Design = "skew+pred"
	// DesignColt is split with a coalescing 4KB component (CoLT).
	DesignColt Design = "colt"
	// DesignColtPP is split with every component coalescing (COLT++).
	DesignColtPP Design = "colt++"
	// DesignIdeal never misses on mapped pages (Figures 1, 15).
	DesignIdeal Design = "ideal"
	// DesignMixSuperIndex is the Sec 3 ablation: MIX indexed by superpage
	// bits.
	DesignMixSuperIndex Design = "mix-superidx"
	// DesignMixRange is MIX with the paper's literal range-encoded L2
	// (the invalidation study's third point).
	DesignMixRange Design = "mix-range"
	// DesignMixAsL2 keeps the commercial split L1 and swaps only the L2
	// for a MIX array — the drop-in upgrade path a vendor would ship
	// first.
	DesignMixAsL2 Design = "mix-as-l2"
	// DesignSplitPWC is the Haswell baseline with paging-structure caches
	// on the walker, isolating how much of the TLB-design gap MMU caches
	// close.
	DesignSplitPWC Design = "split+pwc"
	// DesignVictima is the split baseline backed by a cache-resident
	// victim level fed by L2 evictions (after Victima, PAPERS.md).
	DesignVictima Design = "victima"
	// DesignMixVictima stacks the victim level behind MIX TLBs, combining
	// coalesced reach with spilled reach.
	DesignMixVictima Design = "mix+victima"
	// DesignVictimaLite is victima with an eighth of the victim bundles —
	// the capacity-sensitivity point of the reach study.
	DesignVictimaLite Design = "victima-lite"
)

// AllDesigns lists the comparable designs in report order.
func AllDesigns() []Design {
	return []Design{DesignSplit, DesignMix, DesignMixColt, DesignRehash,
		DesignSkew, DesignColt, DesignColtPP, DesignIdeal}
}

// Build constructs an MMU of the given design over the page table and
// cache hierarchy, resolving the name in the builtin registry. fault
// handles demand paging (may be nil).
func Build(d Design, src TranslationSource, pt *pagetable.PageTable, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	return DefaultRegistry().Build(string(d), src, pt, caches, fault)
}
