package mmu

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// Design names the TLB organizations compared in the evaluation (Sec 7.2).
type Design string

// The design points. All are area-equivalent to the split baseline at the
// L1 (about 100 entries) and L2 (about 544 entries), except where a
// design's own overheads (skew timestamps) or savings (MIX absorbing the
// separate 1GB TLB) change the entry budget, as the paper describes.
const (
	// DesignSplit is the commercial Haswell-style baseline.
	DesignSplit Design = "split"
	// DesignMix is the paper's contribution.
	DesignMix Design = "mix"
	// DesignMixColt is MIX plus small-page coalescing (Fig 18's best).
	DesignMixColt Design = "mix+colt"
	// DesignRehash is hash-rehash for all sizes with the best predictor.
	DesignRehash Design = "rehash+pred"
	// DesignSkew is a skew-associative TLB with the best predictor.
	DesignSkew Design = "skew+pred"
	// DesignColt is split with a coalescing 4KB component (CoLT).
	DesignColt Design = "colt"
	// DesignColtPP is split with every component coalescing (COLT++).
	DesignColtPP Design = "colt++"
	// DesignIdeal never misses on mapped pages (Figures 1, 15).
	DesignIdeal Design = "ideal"
	// DesignMixSuperIndex is the Sec 3 ablation: MIX indexed by superpage
	// bits.
	DesignMixSuperIndex Design = "mix-superidx"
)

// AllDesigns lists the comparable designs in report order.
func AllDesigns() []Design {
	return []Design{DesignSplit, DesignMix, DesignMixColt, DesignRehash,
		DesignSkew, DesignColt, DesignColtPP, DesignIdeal}
}

// Build constructs a two-level MMU of the given design over the page table
// and cache hierarchy. fault handles demand paging (may be nil).
func Build(d Design, src TranslationSource, pt *pagetable.PageTable, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	cfg := Config{Name: string(d)}
	var err error
	switch d {
	case DesignSplit:
		if cfg.L1, cfg.L2, err = levels(tlb.NewHaswellL1())(tlb.NewHaswellL2()); err != nil {
			return nil, err
		}
	case DesignMix:
		if cfg.L1, cfg.L2, err = levels(core.New(core.L1Config()))(core.New(core.L2Config())); err != nil {
			return nil, err
		}
	case DesignMixColt:
		l1 := core.L1Config()
		l1.Name, l1.SmallCoalesce = "mix+colt-L1", 4
		l2 := core.L2Config()
		l2.Name, l2.SmallCoalesce = "mix+colt-L2", 4
		if cfg.L1, cfg.L2, err = levels(core.New(l1))(core.New(l2)); err != nil {
			return nil, err
		}
	case DesignRehash:
		// 16 sets x 6 ways = 96 entries at L1; 128 x 4 at L2, all sizes.
		if cfg.L1, err = predictedRehash("rehash-L1", 16, 6); err != nil {
			return nil, err
		}
		if cfg.L2, err = predictedRehash("rehash-L2", 128, 4); err != nil {
			return nil, err
		}
	case DesignSkew:
		// Skew pays area for replacement timestamps (Sec 7.2), so its
		// area-equivalent builds carry fewer entries: 16x6=96 -> 16 sets
		// of 2 ways per size at L1 is already 96, minus the timestamp
		// tax modeled as one fewer way-set at the L2 (64x6=384 vs 512).
		if cfg.L1, err = predictedSkew("skew-L1", 16, 2); err != nil {
			return nil, err
		}
		if cfg.L2, err = predictedSkew("skew-L2", 64, 2); err != nil {
			return nil, err
		}
	case DesignColt:
		if cfg.L1, cfg.L2, err = levels(tlb.NewColtSplitL1())(tlb.NewHaswellL2()); err != nil {
			return nil, err
		}
	case DesignColtPP:
		// COLT++ coalesces within each *split* TLB (Sec 7.2); the L2
		// keeps the commercial shared hash-rehash array, which cannot
		// coalesce across its mixed-size sets.
		if cfg.L1, cfg.L2, err = levels(tlb.NewColtPlusPlusL1())(tlb.NewHaswellL2()); err != nil {
			return nil, err
		}
	case DesignIdeal:
		if pt == nil {
			return nil, fmt.Errorf("mmu: ideal design requires the native page table")
		}
		cfg.L1 = tlb.NewIdeal(pt)
		cfg.FreeWalks = true
	case DesignMixSuperIndex:
		l1 := core.L1Config()
		l1.Name, l1.IndexShift = "mix-superidx-L1", addr.Shift2M
		l2 := core.L2Config()
		l2.Name, l2.IndexShift = "mix-superidx-L2", addr.Shift2M
		if cfg.L1, cfg.L2, err = levels(core.New(l1))(core.New(l2)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("mmu: unknown design %q", d)
	}
	return New(cfg, src, caches, fault)
}

// levels pairs two fallible TLB constructors into (L1, L2, err). The
// curried shape lets each multi-valued constructor call be the sole
// argument list of its application.
func levels(l1 tlb.TLB, e1 error) func(l2 tlb.TLB, e2 error) (tlb.TLB, tlb.TLB, error) {
	return func(l2 tlb.TLB, e2 error) (tlb.TLB, tlb.TLB, error) {
		if e1 != nil {
			return nil, nil, e1
		}
		if e2 != nil {
			return nil, nil, e2
		}
		return l1, l2, nil
	}
}

func predictedRehash(name string, sets, ways int) (tlb.TLB, error) {
	inner, err := tlb.NewHashRehash(name, sets, ways, addr.Page4K, addr.Page2M, addr.Page1G)
	if err != nil {
		return nil, err
	}
	pred, err := tlb.NewSizePredictor(512)
	if err != nil {
		return nil, err
	}
	return tlb.NewPredictedRehash(inner, pred), nil
}

func predictedSkew(name string, sets, waysEach int) (tlb.TLB, error) {
	inner, err := tlb.NewSkewAllSizes(name, sets, waysEach)
	if err != nil {
		return nil, err
	}
	pred, err := tlb.NewSizePredictor(512)
	if err != nil {
		return nil, err
	}
	return tlb.NewPredictedSkew(inner, pred), nil
}
