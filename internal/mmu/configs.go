package mmu

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/core"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
)

// Design names the TLB organizations compared in the evaluation (Sec 7.2).
type Design string

// The design points. All are area-equivalent to the split baseline at the
// L1 (about 100 entries) and L2 (about 544 entries), except where a
// design's own overheads (skew timestamps) or savings (MIX absorbing the
// separate 1GB TLB) change the entry budget, as the paper describes.
const (
	// DesignSplit is the commercial Haswell-style baseline.
	DesignSplit Design = "split"
	// DesignMix is the paper's contribution.
	DesignMix Design = "mix"
	// DesignMixColt is MIX plus small-page coalescing (Fig 18's best).
	DesignMixColt Design = "mix+colt"
	// DesignRehash is hash-rehash for all sizes with the best predictor.
	DesignRehash Design = "rehash+pred"
	// DesignSkew is a skew-associative TLB with the best predictor.
	DesignSkew Design = "skew+pred"
	// DesignColt is split with a coalescing 4KB component (CoLT).
	DesignColt Design = "colt"
	// DesignColtPP is split with every component coalescing (COLT++).
	DesignColtPP Design = "colt++"
	// DesignIdeal never misses on mapped pages (Figures 1, 15).
	DesignIdeal Design = "ideal"
	// DesignMixSuperIndex is the Sec 3 ablation: MIX indexed by superpage
	// bits.
	DesignMixSuperIndex Design = "mix-superidx"
)

// AllDesigns lists the comparable designs in report order.
func AllDesigns() []Design {
	return []Design{DesignSplit, DesignMix, DesignMixColt, DesignRehash,
		DesignSkew, DesignColt, DesignColtPP, DesignIdeal}
}

// Build constructs a two-level MMU of the given design over the page table
// and cache hierarchy. fault handles demand paging (may be nil).
func Build(d Design, src TranslationSource, pt *pagetable.PageTable, caches *cachesim.Hierarchy, fault FaultHandler) *MMU {
	cfg := Config{Name: string(d)}
	switch d {
	case DesignSplit:
		cfg.L1 = tlb.NewHaswellL1()
		cfg.L2 = tlb.NewHaswellL2()
	case DesignMix:
		cfg.L1 = core.New(core.L1Config())
		cfg.L2 = core.New(core.L2Config())
	case DesignMixColt:
		l1 := core.L1Config()
		l1.Name, l1.SmallCoalesce = "mix+colt-L1", 4
		l2 := core.L2Config()
		l2.Name, l2.SmallCoalesce = "mix+colt-L2", 4
		cfg.L1 = core.New(l1)
		cfg.L2 = core.New(l2)
	case DesignRehash:
		// 16 sets x 6 ways = 96 entries at L1; 128 x 4 at L2, all sizes.
		cfg.L1 = tlb.NewPredictedRehash(
			tlb.NewHashRehash("rehash-L1", 16, 6, addr.Page4K, addr.Page2M, addr.Page1G),
			tlb.NewSizePredictor(512))
		cfg.L2 = tlb.NewPredictedRehash(
			tlb.NewHashRehash("rehash-L2", 128, 4, addr.Page4K, addr.Page2M, addr.Page1G),
			tlb.NewSizePredictor(512))
	case DesignSkew:
		// Skew pays area for replacement timestamps (Sec 7.2), so its
		// area-equivalent builds carry fewer entries: 16x6=96 -> 16 sets
		// of 2 ways per size at L1 is already 96, minus the timestamp
		// tax modeled as one fewer way-set at the L2 (64x6=384 vs 512).
		cfg.L1 = tlb.NewPredictedSkew(tlb.NewSkewAllSizes("skew-L1", 16, 2), tlb.NewSizePredictor(512))
		cfg.L2 = tlb.NewPredictedSkew(tlb.NewSkewAllSizes("skew-L2", 64, 2), tlb.NewSizePredictor(512))
	case DesignColt:
		cfg.L1 = tlb.NewColtSplitL1()
		cfg.L2 = tlb.NewHaswellL2()
	case DesignColtPP:
		// COLT++ coalesces within each *split* TLB (Sec 7.2); the L2
		// keeps the commercial shared hash-rehash array, which cannot
		// coalesce across its mixed-size sets.
		cfg.L1 = tlb.NewColtPlusPlusL1()
		cfg.L2 = tlb.NewHaswellL2()
	case DesignIdeal:
		if pt == nil {
			panic("mmu: ideal design requires the native page table")
		}
		cfg.L1 = tlb.NewIdeal(pt)
		cfg.FreeWalks = true
	case DesignMixSuperIndex:
		l1 := core.L1Config()
		l1.Name, l1.IndexShift = "mix-superidx-L1", addr.Shift2M
		l2 := core.L2Config()
		l2.Name, l2.IndexShift = "mix-superidx-L2", addr.Shift2M
		cfg.L1 = core.New(l1)
		cfg.L2 = core.New(l2)
	default:
		panic(fmt.Sprintf("mmu: unknown design %q", d))
	}
	return New(cfg, src, caches, fault)
}
