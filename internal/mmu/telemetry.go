package mmu

import (
	"fmt"

	"mixtlb/internal/telemetry"
	"mixtlb/internal/tlb"
)

// mmuTel holds the MMU's pre-resolved telemetry handles. Resolving them
// once at attach time keeps the hot path down to a single nil check per
// site; a nil *mmuTel is the (default) disabled state.
type mmuTel struct {
	col          *telemetry.Collector
	memoHits     *telemetry.Counter
	walkFused    *telemetry.Counter
	walkScalar   *telemetry.Counter
	walkDepth    *telemetry.Histogram
	walkCycles   *telemetry.Histogram
	dirtyFused   *telemetry.Counter
	dirtyScalar  *telemetry.Counter
	dirtyGeneric *telemetry.Counter
}

// walkDepthBounds covers native 4-level walks through nested (2D)
// virtualized walks (up to 24 PTE references).
var walkDepthBounds = []uint64{1, 2, 3, 4, 6, 8, 12, 16, 24}

// walkCycleBounds spans an all-L1D walk through a DRAM-bound one.
var walkCycleBounds = []uint64{4, 8, 16, 32, 64, 128, 256, 512, 1024}

// occupancyBounds buckets per-set valid-entry counts.
var occupancyBounds = []uint64{0, 1, 2, 4, 8, 16, 32}

// levelLabel names hierarchy level i in metric labels: "L1", "L2", ...
// Matching the historical two-level label values keeps existing dashboards
// and the telemetry goldens stable.
func levelLabel(i int) string { return fmt.Sprintf("L%d", i+1) }

// AttachTelemetry enables (or, with nil, disables) telemetry for this MMU
// and forwards the collector to any TLB level that is itself
// instrumentable. Metrics carry an mmu label so multi-core systems keep
// per-MMU series.
func (m *MMU) AttachTelemetry(c *telemetry.Collector) {
	for i := range m.levels {
		if ins, ok := m.levels[i].tlb.(telemetry.Instrumentable); ok {
			ins.AttachTelemetry(c)
		}
	}
	if c == nil {
		m.tel = nil
		return
	}
	mc := c.With("mmu", m.cfg.Name)
	m.tel = &mmuTel{
		col:          mc,
		memoHits:     mc.Counter("mmu_memo_hits_total"),
		walkFused:    mc.Counter("mmu_walks_total", "path", "fused"),
		walkScalar:   mc.Counter("mmu_walks_total", "path", "scalar"),
		walkDepth:    mc.Histogram("mmu_walk_depth", walkDepthBounds),
		walkCycles:   mc.Histogram("mmu_walk_cycles", walkCycleBounds),
		dirtyFused:   mc.Counter("mmu_dirty_assists_total", "path", "fused"),
		dirtyScalar:  mc.Counter("mmu_dirty_assists_total", "path", "scalar"),
		dirtyGeneric: mc.Counter("mmu_dirty_assists_total", "path", "generic"),
	}
}

// FlushTelemetry exports the MMU's accumulated Stats counters and a
// per-set occupancy snapshot of every hierarchy level into the registry.
// Call it once, after measurement; it reads Stats but never writes
// simulator state, so results are identical with telemetry on or off.
func (m *MMU) FlushTelemetry() {
	if m.tel == nil {
		return
	}
	mc := m.tel.col
	s := m.stats
	mc.Counter("mmu_accesses_total").Add(s.Accesses)
	mc.Counter("mmu_walks_charged_total").Add(s.Walks)
	mc.Counter("mmu_faults_total").Add(s.Faults)
	mc.Counter("mmu_cycles_total").Add(s.Cycles)
	mc.Counter("mmu_walk_cycles_total").Add(s.WalkCycles)
	mc.Counter("mmu_walk_refs_total").Add(s.WalkRefs)
	mc.Counter("mmu_dirty_micro_ops_total").Add(s.DirtyMicroOps)
	mc.Counter("mmu_invalidations_total").Add(s.Invalidations)
	mc.Counter("mmu_flushes_total").Add(s.Flushes)
	// Always emit at least the L1/L2 series (zero-valued when a design has
	// fewer levels) so exported metric shapes stay stable across designs.
	nlv := len(m.levels)
	if nlv < 2 {
		nlv = 2
	}
	for i := 0; i < nlv; i++ {
		var lv hierLevel
		if i < len(m.levels) {
			lv = m.levels[i]
		}
		label := levelLabel(i)
		mc.Counter("mmu_hits_total", "level", label).Add(lv.hits)
		mc.Counter("mmu_probe_rounds_total", "level", label).Add(uint64(lv.lookup.Probes))
		mc.Counter("mmu_fill_entries_total", "level", label).Add(uint64(lv.fill.EntriesWritten))
	}
	if m.pwc != nil {
		mc.Counter("mmu_pwc_events_total", "kind", "hit").Add(s.PWCHits)
		mc.Counter("mmu_pwc_events_total", "kind", "miss").Add(s.PWCMisses)
		mc.Counter("mmu_pwc_skipped_refs_total").Add(s.PWCSkippedRefs)
	}
	if m.levels[len(m.levels)-1].demoter != nil {
		// Victim-level series exist only for designs that have one, like
		// the PWC series — victimless dumps stay byte-identical.
		mc.Counter("mmu_victim_events_total", "kind", "demotion").Add(s.Demotions)
		mc.Counter("mmu_victim_events_total", "kind", "drop").Add(s.DemotionDrops)
		mc.Counter("mmu_victim_events_total", "kind", "eviction").Add(s.VictimEvictions)
		mc.Counter("mmu_victim_probes_total").Add(s.VictimProbes)
		mc.Counter("mmu_victim_probe_cycles_total").Add(s.VictimProbeCycles)
	}
	if s.ECC.ParityDetected+s.ECC.SilentCorruptions+s.ECC.Scrubbed > 0 {
		mc.Counter("mmu_ecc_events_total", "kind", "parity_detected").Add(s.ECC.ParityDetected)
		mc.Counter("mmu_ecc_events_total", "kind", "silent").Add(s.ECC.SilentCorruptions)
		mc.Counter("mmu_ecc_events_total", "kind", "scrubbed").Add(s.ECC.Scrubbed)
	}
	for i := range m.levels {
		snapshotOccupancy(mc, levelLabel(i), m.levels[i].tlb)
	}
	for i := range m.levels {
		if f, ok := m.levels[i].tlb.(interface{ FlushTelemetry() }); ok {
			f.FlushTelemetry()
		}
	}
}

// snapshotOccupancy records each set's valid-entry count for TLBs that
// can report it.
func snapshotOccupancy(mc *telemetry.Collector, level string, t tlb.TLB) {
	or, ok := t.(tlb.OccupancyReporter)
	if !ok {
		return
	}
	h := mc.Histogram("tlb_set_occupancy", occupancyBounds, "level", level)
	for _, n := range or.OccupancyBySet() {
		h.Observe(uint64(n))
	}
}
