package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/chaos"
	"mixtlb/internal/tlb"
)

// chaosEnv maps a small mixed-size working set and returns the MMU plus
// the expected PA for each VA.
func chaosEnv(t *testing.T, d Design) (*env, *MMU, map[addr.V]addr.P) {
	t.Helper()
	e := newEnv(t)
	want := map[addr.V]addr.P{}
	for i := 0; i < 8; i++ {
		va := addr.V(0x400000 + i*addr.Size2M)
		want[va] = e.mapPage(t, va, addr.Page2M)
	}
	for i := 0; i < 16; i++ {
		va := addr.V(0x10000000 + i*addr.Size4K)
		want[va] = e.mapPage(t, va, addr.Page4K)
	}
	m := mustBuild(Build(d, e.pt, e.pt, e.caches, nil))
	return e, m, want
}

// TestOracleCleanRun is the fault-rate-zero invariant: with the oracle
// attached and no injector, a full run over every design must record zero
// mismatches.
func TestOracleCleanRun(t *testing.T) {
	for _, d := range AllDesigns() {
		e, m, want := chaosEnv(t, d)
		or := chaos.NewOracle(e.pt)
		m.AttachOracle(or)
		for round := 0; round < 50; round++ {
			for va, pa := range want {
				r := m.Translate(tlb.Request{VA: va + 0x33, Write: round%2 == 0})
				if r.Faulted || r.PA != pa+0x33 {
					t.Fatalf("%s: VA %v -> %+v, want PA %v", d, va, r, pa+0x33)
				}
			}
		}
		st := m.Stats()
		if st.OracleMismatches != 0 || st.OracleUnrecovered != 0 || st.ECC != (tlb.ECCStats{}) {
			t.Errorf("%s: clean run recorded faults: %+v", d, st)
		}
		if or.Checks() == 0 {
			t.Errorf("%s: oracle never consulted", d)
		}
	}
}

// TestParityDetectedRecovers forces every TLB read to take a detectable
// corruption: the MMU must scrub, re-walk, and still return the right PA
// on every access.
func TestParityDetectedRecovers(t *testing.T) {
	e, m, want := chaosEnv(t, DesignMix)
	m.InjectFaults(chaos.NewInjector(1, chaos.Rates{TLBCorrupt: 1, SilentFrac: 0}))
	m.AttachOracle(chaos.NewOracle(e.pt))
	for round := 0; round < 20; round++ {
		for va, pa := range want {
			if r := m.Translate(tlb.Request{VA: va}); r.PA != pa {
				t.Fatalf("round %d VA %v: PA %v, want %v", round, va, r.PA, pa)
			}
		}
	}
	st := m.Stats()
	if st.ECC.ParityDetected == 0 || st.ECC.Rewalks == 0 || st.ECC.Scrubbed == 0 {
		t.Errorf("detectable corruption never exercised: %+v", st.ECC)
	}
	if st.ECC.SilentCorruptions != 0 {
		t.Errorf("silent corruptions under SilentFrac=0: %d", st.ECC.SilentCorruptions)
	}
	if st.OracleMismatches != 0 {
		t.Errorf("parity-detected faults leaked to the oracle: %d", st.OracleMismatches)
	}
}

// TestSilentCorruptionCaughtByOracle makes every corruption silent: only
// the oracle stands between the flipped PA and the workload, and no wrong
// translation may escape.
func TestSilentCorruptionCaughtByOracle(t *testing.T) {
	e, m, want := chaosEnv(t, DesignMix)
	m.InjectFaults(chaos.NewInjector(2, chaos.Rates{TLBCorrupt: 0.5, SilentFrac: 1}))
	m.AttachOracle(chaos.NewOracle(e.pt))
	for round := 0; round < 50; round++ {
		for va, pa := range want {
			if r := m.Translate(tlb.Request{VA: va + 0x7}); r.PA != pa+0x7 {
				t.Fatalf("silent corruption reached the workload: VA %v PA %v, want %v",
					va, r.PA, pa+0x7)
			}
		}
	}
	st := m.Stats()
	if st.ECC.SilentCorruptions == 0 {
		t.Fatal("silent corruption never injected")
	}
	if st.OracleMismatches == 0 || st.OracleRecoveries == 0 {
		t.Errorf("oracle never caught/recovered: %+v", st)
	}
	if st.OracleUnrecovered != 0 {
		t.Errorf("%d accesses stayed wrong", st.OracleUnrecovered)
	}
}

// TestSilentCorruptionWithoutOracleGoesWrong proves the injection is real:
// without the oracle, a silently corrupted hit returns a wrong PA.
func TestSilentCorruptionWithoutOracleGoesWrong(t *testing.T) {
	e, m, _ := chaosEnv(t, DesignMix)
	_ = e
	m.InjectFaults(chaos.NewInjector(3, chaos.Rates{TLBCorrupt: 1, SilentFrac: 1}))
	va := addr.V(0x400000)
	first := m.Translate(tlb.Request{VA: va}) // walk: uncorrupted
	wrong := false
	for i := 0; i < 10 && !wrong; i++ {
		r := m.Translate(tlb.Request{VA: va}) // hit: silently corrupted
		wrong = r.PA != first.PA
	}
	if !wrong {
		t.Fatal("rate-1 silent corruption never produced a wrong PA")
	}
}

// TestPTECorruptionRecovered corrupts every walked translation; the
// corrupted entry is even cached, yet the oracle must keep every returned
// PA correct (falling back to ground truth under persistent injection).
func TestPTECorruptionRecovered(t *testing.T) {
	e, m, want := chaosEnv(t, DesignSplit)
	m.InjectFaults(chaos.NewInjector(4, chaos.Rates{PTECorrupt: 1}))
	m.AttachOracle(chaos.NewOracle(e.pt))
	for round := 0; round < 10; round++ {
		for va, pa := range want {
			if r := m.Translate(tlb.Request{VA: va}); r.PA != pa {
				t.Fatalf("PTE corruption reached the workload: VA %v PA %v, want %v", va, r.PA, pa)
			}
		}
	}
	st := m.Stats()
	if st.PTECorruptions == 0 {
		t.Fatal("walk corruption never injected")
	}
	if st.OracleRecoveries == 0 {
		t.Error("oracle never recovered a corrupted walk")
	}
	if st.OracleUnrecovered != 0 {
		t.Errorf("%d accesses stayed wrong", st.OracleUnrecovered)
	}
}

// TestScrubCorrupt checks the MIX bundle scrubber evicts exactly the
// members covering the VA, via the MMU's scrub path.
func TestScrubCorrupt(t *testing.T) {
	e, m, want := chaosEnv(t, DesignMix)
	m.AttachOracle(chaos.NewOracle(e.pt))
	va := addr.V(0x400000)
	m.Translate(tlb.Request{VA: va}) // walk + fill
	r := m.Translate(tlb.Request{VA: va})
	if !r.L1Hit {
		t.Fatalf("expected L1 hit, got %+v", r)
	}
	m.scrubCorrupt(va, addr.Page2M)
	if m.Stats().ECC.Scrubbed == 0 {
		t.Error("scrub removed nothing")
	}
	r = m.Translate(tlb.Request{VA: va})
	if r.L1Hit || r.L2Hit || !r.Walked {
		t.Errorf("post-scrub access should walk: %+v", r)
	}
	if r.PA != want[va] {
		t.Errorf("post-scrub PA = %v, want %v", r.PA, want[va])
	}
}
