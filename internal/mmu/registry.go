package mmu

import (
	"sort"
	"sync"

	"mixtlb/internal/cachesim"
	"mixtlb/internal/pagetable"
)

// Registry holds validated DesignSpecs by name. A registry stores only
// specs (data); TLBs and MMUs are constructed fresh on every Build, so
// one registry can serve many cores and experiments concurrently.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]DesignSpec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]DesignSpec)}
}

// Register validates the spec and adds it. Duplicate names are a
// *DesignSpecError: silently replacing a design mid-run would make
// experiment rows unattributable.
func (r *Registry) Register(s DesignSpec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		return &DesignSpecError{Design: s.Name, Level: -1, Field: "name",
			Reason: "duplicate design name"}
	}
	r.specs[s.Name] = s
	return nil
}

// MustRegister is Register for statically-known specs.
func (r *Registry) MustRegister(s DesignSpec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named spec.
func (r *Registry) Lookup(name string) (DesignSpec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	return s, ok
}

// Names returns every registered design name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.specs))
	for n := range r.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec, sorted by name.
func (r *Registry) Specs() []DesignSpec {
	names := r.Names()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DesignSpec, len(names))
	for i, n := range names {
		out[i] = r.specs[n]
	}
	return out
}

// Build constructs an MMU of the named design, returning
// *UnknownDesignError when the registry has no such spec.
func (r *Registry) Build(name string, src TranslationSource, pt *pagetable.PageTable, caches *cachesim.Hierarchy, fault FaultHandler) (*MMU, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return nil, &UnknownDesignError{Name: name, Valid: r.Names()}
	}
	return s.Build(src, pt, caches, fault)
}

// BuildConfig assembles the named design's Config without wiring an MMU.
func (r *Registry) BuildConfig(name string, pt *pagetable.PageTable) (Config, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return Config{}, &UnknownDesignError{Name: name, Valid: r.Names()}
	}
	return s.BuildConfig(pt)
}

// builtinSpecs declares every design the evaluation knows, replacing the
// hand-written constructors configs.go used to carry. Geometry comments
// follow Sec 7.2's area-equivalence argument.
func builtinSpecs() []DesignSpec {
	mixL1 := LevelSpec{Kind: KindMix, Name: "mix-L1", Sets: 16, Ways: 6}
	mixL2 := LevelSpec{Kind: KindMix, Name: "mix-L2", Sets: 64, Ways: 8}
	return []DesignSpec{
		{
			Name: string(DesignSplit),
			Desc: "commercial Haswell-style split baseline",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindHaswellL2},
			},
		},
		{
			Name:   string(DesignMix),
			Desc:   "MIX TLBs at both levels (the paper's contribution)",
			Levels: []LevelSpec{mixL1, mixL2},
		},
		{
			Name: string(DesignMixColt),
			Desc: "MIX plus 4KB coalescing (Fig 18's best)",
			Levels: []LevelSpec{
				{Kind: KindMix, Name: "mix+colt-L1", Sets: 16, Ways: 6, SmallCoalesce: 4},
				{Kind: KindMix, Name: "mix+colt-L2", Sets: 64, Ways: 8, SmallCoalesce: 4},
			},
		},
		{
			Name: string(DesignRehash),
			Desc: "hash-rehash for all sizes with the best predictor",
			Levels: []LevelSpec{
				// 16 sets x 6 ways = 96 entries at L1; 128 x 4 at L2.
				{Kind: KindRehashPred, Name: "rehash-L1", Sets: 16, Ways: 6},
				{Kind: KindRehashPred, Name: "rehash-L2", Sets: 128, Ways: 4},
			},
		},
		{
			Name: string(DesignSkew),
			Desc: "skew-associative TLB with the best predictor",
			Levels: []LevelSpec{
				// Skew pays area for replacement timestamps (Sec 7.2), so
				// its area-equivalent builds carry fewer entries: 16 sets
				// of 2 ways per size at L1, 64 at the L2 (64x6=384 vs 512).
				{Kind: KindSkewPred, Name: "skew-L1", Sets: 16, Ways: 2},
				{Kind: KindSkewPred, Name: "skew-L2", Sets: 64, Ways: 2},
			},
		},
		{
			Name: string(DesignColt),
			Desc: "split with a coalescing 4KB component (CoLT)",
			Levels: []LevelSpec{
				{Kind: KindColtSplitL1},
				{Kind: KindHaswellL2},
			},
		},
		{
			Name: string(DesignColtPP),
			Desc: "split with every component coalescing (COLT++)",
			Levels: []LevelSpec{
				// The L2 keeps the commercial shared hash-rehash array,
				// which cannot coalesce across its mixed-size sets.
				{Kind: KindColtPPSplitL1},
				{Kind: KindHaswellL2},
			},
		},
		{
			Name:      string(DesignIdeal),
			Desc:      "never misses on mapped pages (Figures 1, 15)",
			Levels:    []LevelSpec{{Kind: KindIdeal}},
			FreeWalks: true,
		},
		{
			Name: string(DesignMixSuperIndex),
			Desc: "Sec 3 ablation: MIX indexed by superpage bits",
			Levels: []LevelSpec{
				{Kind: KindMix, Name: "mix-superidx-L1", Sets: 16, Ways: 6, SuperpageIndex: true},
				{Kind: KindMix, Name: "mix-superidx-L2", Sets: 64, Ways: 8, SuperpageIndex: true},
			},
		},
		{
			Name: string(DesignMixRange),
			Desc: "MIX with the paper's literal range-encoded L2",
			Levels: []LevelSpec{
				mixL1,
				{Kind: KindMix, Name: "mix-L2-range", Sets: 128, Ways: 4, Encoding: "range"},
			},
		},
		{
			Name: string(DesignMixAsL2),
			Desc: "commercial split L1 in front of a MIX L2 (drop-in L2 upgrade)",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindMix, Name: "mix-as-l2-L2", Sets: 64, Ways: 8},
			},
		},
		{
			Name: string(DesignSplitPWC),
			Desc: "Haswell baseline with paging-structure caches on the walker",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindHaswellL2},
			},
			PWC: true,
		},
		{
			// 512x4 bundles x 8 PTEs = 16K translations: 64MB of 4KB reach
			// (or up to 32GB of 2MB) from 128KB of cache lines — Victima's
			// trade of cache capacity for translation reach.
			Name: string(DesignVictima),
			Desc: "split baseline backed by a cache-resident victim level (Victima)",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindHaswellL2},
				{Kind: KindVictim, Name: "victima-L3", Sets: 512, Ways: 4},
			},
		},
		{
			Name: string(DesignMixVictima),
			Desc: "MIX TLBs with a cache-resident victim level behind them",
			Levels: []LevelSpec{
				mixL1, mixL2,
				{Kind: KindVictim, Name: "mix-victima-L3", Sets: 512, Ways: 4},
			},
		},
		{
			// An eighth of victima's bundles: the capacity-sensitivity point.
			Name: string(DesignVictimaLite),
			Desc: "victim level at an eighth the reach (capacity sensitivity)",
			Levels: []LevelSpec{
				{Kind: KindHaswellL1},
				{Kind: KindHaswellL2},
				{Kind: KindVictim, Name: "victima-lite-L3", Sets: 64, Ways: 4},
			},
		},
	}
}

// DefaultRegistry returns a fresh registry populated with every builtin
// design. Each call builds a new instance so callers may extend it (e.g.
// with -design-file specs) without affecting others.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, s := range builtinSpecs() {
		r.MustRegister(s)
	}
	return r
}
