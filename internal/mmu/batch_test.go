package mmu

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

// allTestDesigns is every comparable design plus the superpage-index
// ablation and the cache-backed victim designs, so equivalence
// guarantees cover the full catalog.
func allTestDesigns() []Design {
	return append(AllDesigns(), DesignMixSuperIndex,
		DesignVictima, DesignMixVictima, DesignVictimaLite)
}

// mappedPage is one pre-mapped page available to the randomized stream.
type mappedPage struct {
	va   addr.V
	size addr.PageSize
}

// buildRefEnv maps a deterministic spread of 1GB, 2MB, and 4KB pages —
// enough 4KB pages to overflow both TLB levels so steady state keeps
// walking and filling — and returns the env plus the mapped page list.
func buildRefEnv(t *testing.T, pages4k int) (*env, []mappedPage) {
	t.Helper()
	e := newEnv(t)
	var mapped []mappedPage
	giga := addr.V(1) << 30
	e.mapPage(t, giga, addr.Page1G)
	mapped = append(mapped, mappedPage{giga, addr.Page1G})
	for i := 0; i < 6; i++ {
		va := addr.V(1<<33) + addr.V(i)<<21
		e.mapPage(t, va, addr.Page2M)
		mapped = append(mapped, mappedPage{va, addr.Page2M})
	}
	for i := 0; i < pages4k; i++ {
		va := addr.V(1<<34) + addr.V(i)<<12
		e.mapPage(t, va, addr.Page4K)
		mapped = append(mapped, mappedPage{va, addr.Page4K})
	}
	return e, mapped
}

// randomRequests generates a reproducible request stream over the mapped
// pages: random page, random in-page offset, 30% stores, PCs drawn from a
// small set (so size predictors train), and a 50% chance of staying on the
// previous page (so the same-page replay memo is exercised heavily).
func randomRequests(seed uint64, mapped []mappedPage, n int) []tlb.Request {
	rng := simrand.New(seed)
	reqs := make([]tlb.Request, n)
	prev := mapped[0]
	for i := range reqs {
		p := prev
		if rng.Float64() < 0.5 {
			p = mapped[rng.Intn(len(mapped))]
			prev = p
		}
		off := addr.V(rng.Uint64n(p.size.Bytes()) &^ 7)
		reqs[i] = tlb.Request{
			VA:    p.va + off,
			Write: rng.Bool(0.3),
			PC:    0x400000 + 64*rng.Uint64n(8),
		}
	}
	return reqs
}

func buildDesign(t *testing.T, d Design, pages4k int) *MMU {
	t.Helper()
	e, _ := buildRefEnv(t, pages4k)
	m, err := Build(d, e.pt, e.pt, e.caches, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTranslateBatchMatchesScalar drives the same randomized stream
// through three MMUs per design — scalar Translate, TranslateBatch in
// mixed chunk sizes, and scalar with the replay memo disabled — and
// requires identical per-access Results and identical final Stats from
// all three.
func TestTranslateBatchMatchesScalar(t *testing.T) {
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0xfeed+uint64(len(d)), mapped, 20000)

			scalar := buildDesign(t, d, pages4k)
			batch := buildDesign(t, d, pages4k)
			nomemo := buildDesign(t, d, pages4k)
			nomemo.DisableMemo()

			want := make([]Result, len(reqs))
			for i, r := range reqs {
				want[i] = scalar.Translate(r)
			}

			got := make([]Result, len(reqs))
			chunks := []int{1, 3, 64, 512}
			for i, c := 0, 0; i < len(reqs); c++ {
				n := chunks[c%len(chunks)]
				if i+n > len(reqs) {
					n = len(reqs) - i
				}
				if k := batch.TranslateBatch(reqs[i:i+n], got[i:i+n]); k != n {
					t.Fatalf("TranslateBatch stopped at %d of %d (req %d)", k, n, i)
				}
				i += n
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("req %d (%+v): batch %+v, scalar %+v", i, reqs[i], got[i], want[i])
				}
			}
			if bs, ss := batch.Stats(), scalar.Stats(); bs != ss {
				t.Errorf("batch stats %+v\nscalar stats %+v", bs, ss)
			}

			for i, r := range reqs {
				if nr := nomemo.Translate(r); nr != want[i] {
					t.Fatalf("req %d (%+v): memo-off %+v, memo-on %+v", i, reqs[i], nr, want[i])
				}
			}
			if ns, ss := nomemo.Stats(), scalar.Stats(); ns != ss {
				t.Errorf("memo-off stats %+v\nmemo-on stats %+v", ns, ss)
			}
		})
	}
}

// TestTranslateBatchFaultStops verifies the batch contract: translation
// stops after the first faulted result and reports how many results were
// produced.
func TestTranslateBatchFaultStops(t *testing.T) {
	e, mapped := buildRefEnv(t, 4)
	m, err := Build(DesignSplit, e.pt, e.pt, e.caches, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []tlb.Request{
		{VA: mapped[0].va},
		{VA: 0x7fff00000000}, // unmapped, no fault handler
		{VA: mapped[1].va},
	}
	out := make([]Result, len(reqs))
	if k := m.TranslateBatch(reqs, out); k != 2 {
		t.Fatalf("TranslateBatch = %d, want 2", k)
	}
	if out[0].Faulted || !out[1].Faulted {
		t.Fatalf("results: %+v", out[:2])
	}
}

// TestTranslateZeroAlloc pins the steady-state translation loop — L1/L2
// lookups, fills, fused walks, and the replay memo — at zero heap
// allocations per access for every design.
func TestTranslateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const pages4k = 1024
	for _, d := range allTestDesigns() {
		t.Run(string(d), func(t *testing.T) {
			_, mapped := buildRefEnv(t, pages4k)
			reqs := randomRequests(0xa110c+uint64(len(d)), mapped, 4096)
			m := buildDesign(t, d, pages4k)
			// Warm up: touch (and dirty) every page so the measured loop
			// sees only steady-state hits, capacity misses, and refills.
			for _, r := range reqs {
				m.Translate(r)
			}
			i := 0
			avg := testing.AllocsPerRun(20, func() {
				for j := 0; j < 256; j++ {
					m.Translate(reqs[i%len(reqs)])
					i++
				}
			})
			if avg != 0 {
				t.Errorf("Translate allocates %.2f times per 256 accesses in steady state", avg)
			}
		})
	}
}
