package perfmodel

import (
	"math"
	"testing"

	"mixtlb/internal/mmu"
)

func TestRuntimeBasic(t *testing.T) {
	p := Default(1.0, 0.5)
	st := mmu.Stats{Accesses: 1000, Cycles: 1000} // exactly L1Hit each
	e := p.Runtime(st)
	if e.Instructions != 2000 {
		t.Errorf("instructions = %v", e.Instructions)
	}
	if e.TranslationCycles != 0 {
		t.Errorf("pure-L1-hit run has translation overhead %v", e.TranslationCycles)
	}
	if e.PctTranslation() != 0 {
		t.Errorf("PctTranslation = %v", e.PctTranslation())
	}
}

func TestRuntimeWithOverhead(t *testing.T) {
	p := Default(1.0, 0.5)
	st := mmu.Stats{Accesses: 1000, Cycles: 3000} // 2000 cycles of overhead
	e := p.Runtime(st)
	if e.TranslationCycles != 2000 {
		t.Errorf("overhead = %v", e.TranslationCycles)
	}
	if e.TotalCycles != 2000+2000 {
		t.Errorf("total = %v", e.TotalCycles)
	}
	if got := e.PctTranslation(); got != 50 {
		t.Errorf("PctTranslation = %v", got)
	}
	if got := e.OverheadVsIdealPercent(); got != 100 {
		t.Errorf("OverheadVsIdeal = %v", got)
	}
}

func TestImprovementPercent(t *testing.T) {
	p := Default(1.0, 0.5)
	slow := p.Runtime(mmu.Stats{Accesses: 1000, Cycles: 5000})
	fast := p.Runtime(mmu.Stats{Accesses: 1000, Cycles: 1000})
	imp := ImprovementPercent(slow, fast)
	// slow: 2000 base + 4000 overhead = 6000; fast: 2000. 66.7%.
	if math.Abs(imp-66.67) > 0.1 {
		t.Errorf("improvement = %v", imp)
	}
	if ImprovementPercent(Estimate{}, fast) != 0 {
		t.Error("zero base not handled")
	}
	// Improvement of a design over itself is zero.
	if ImprovementPercent(fast, fast) != 0 {
		t.Error("self-improvement nonzero")
	}
}

func TestNegativeOverheadClamped(t *testing.T) {
	p := Default(1.0, 0.5)
	// Fewer cycles than accesses (ideal TLB with FreeWalks rounding).
	e := p.Runtime(mmu.Stats{Accesses: 1000, Cycles: 500})
	if e.TranslationCycles != 0 {
		t.Errorf("negative overhead not clamped: %v", e.TranslationCycles)
	}
}

func TestZeroRefsPerInstrDefaulted(t *testing.T) {
	p := Params{BaseCPI: 1, L1HitCycles: 1}
	e := p.Runtime(mmu.Stats{Accesses: 330, Cycles: 330})
	if e.Instructions < 900 || e.Instructions > 1100 {
		t.Errorf("instructions = %v", e.Instructions)
	}
}

func TestMoreMissesMoreTranslationShare(t *testing.T) {
	p := Default(1.5, 0.35)
	low := p.Runtime(mmu.Stats{Accesses: 10000, Cycles: 12000})
	high := p.Runtime(mmu.Stats{Accesses: 10000, Cycles: 90000})
	if low.PctTranslation() >= high.PctTranslation() {
		t.Error("translation share not monotone in cycles")
	}
}
