package perfmodel

import (
	"fmt"

	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
)

// CrossCheck verifies a ledger's books against the aggregate Stats
// counters this model consumes, closing the loop between attribution and
// estimation: AvgWalkCycles divides Stats.WalkCycles, so the ledger's
// walk categories must agree with it, and likewise the victim-probe
// books with Stats.VictimProbeCycles.
//
// With oracle retries in play the agreement is one-sided: Stats.WalkCycles
// keeps counting retry walks while the ledger books them as chaos-retry,
// so the walk categories may only fall short, never exceed. On retry-free
// runs (ChaosRetry events zero) equality is exact and enforced. Nil-safe:
// an absent ledger cross-checks clean.
func CrossCheck(st mmu.Stats, led *ledger.Ledger) error {
	if led == nil {
		return nil
	}
	e := led.Entries()
	walk := e[ledger.WalkFull].Cycles + e[ledger.WalkPWC].Cycles + e[ledger.WalkContig].Cycles
	victim := e[ledger.VictimProbe].Cycles
	retries := e[ledger.ChaosRetry].Events
	if retries == 0 {
		if walk != st.WalkCycles {
			return fmt.Errorf("perfmodel: ledger walk cycles %d != Stats.WalkCycles %d", walk, st.WalkCycles)
		}
		if victim != st.VictimProbeCycles {
			return fmt.Errorf("perfmodel: ledger victim cycles %d != Stats.VictimProbeCycles %d", victim, st.VictimProbeCycles)
		}
		return nil
	}
	if walk > st.WalkCycles {
		return fmt.Errorf("perfmodel: ledger walk cycles %d exceed Stats.WalkCycles %d under %d retries", walk, st.WalkCycles, retries)
	}
	if victim > st.VictimProbeCycles {
		return fmt.Errorf("perfmodel: ledger victim cycles %d exceed Stats.VictimProbeCycles %d under %d retries", victim, st.VictimProbeCycles, retries)
	}
	return nil
}

// AttributionShares converts ledger books into per-category percentage
// shares of total attributed cycles — the stacked columns of the
// breakdown experiment. All zeros when nothing was attributed.
func AttributionShares(entries [ledger.NumCategories]ledger.Entry) [ledger.NumCategories]float64 {
	var out [ledger.NumCategories]float64
	var total uint64
	for _, e := range entries {
		total += e.Cycles
	}
	if total == 0 {
		return out
	}
	for i, e := range entries {
		out[i] = 100 * float64(e.Cycles) / float64(total)
	}
	return out
}
