package perfmodel

import (
	"strings"
	"testing"

	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
)

func TestCrossCheckNil(t *testing.T) {
	if err := CrossCheck(mmu.Stats{WalkCycles: 99}, nil); err != nil {
		t.Fatalf("nil ledger: %v", err)
	}
}

func TestCrossCheckExactWithoutRetries(t *testing.T) {
	led := ledger.New(0)
	led.Charge(ledger.WalkFull, 30)
	led.Charge(ledger.WalkPWC, 10)
	led.Charge(ledger.VictimProbe, 5)
	st := mmu.Stats{WalkCycles: 40, VictimProbeCycles: 5}
	if err := CrossCheck(st, led); err != nil {
		t.Fatalf("balanced books rejected: %v", err)
	}
	st.WalkCycles = 41
	err := CrossCheck(st, led)
	if err == nil || !strings.Contains(err.Error(), "walk cycles") {
		t.Fatalf("1-cycle walk drift not caught: %v", err)
	}
	st.WalkCycles = 40
	st.VictimProbeCycles = 6
	if err := CrossCheck(st, led); err == nil {
		t.Fatal("victim drift not caught")
	}
}

func TestCrossCheckOneSidedUnderRetries(t *testing.T) {
	led := ledger.New(0)
	led.Charge(ledger.WalkFull, 30)
	led.SetRetry(true)
	led.Charge(ledger.WalkFull, 20) // books as chaos-retry
	led.SetRetry(false)
	// Stats counted both walks; the ledger's walk category only the first.
	st := mmu.Stats{WalkCycles: 50}
	if err := CrossCheck(st, led); err != nil {
		t.Fatalf("retry shortfall rejected: %v", err)
	}
	st.WalkCycles = 20 // ledger walk books exceed stats: impossible
	if err := CrossCheck(st, led); err == nil {
		t.Fatal("walk excess under retries not caught")
	}
}

func TestAttributionShares(t *testing.T) {
	var e [ledger.NumCategories]ledger.Entry
	if got := AttributionShares(e); got != ([ledger.NumCategories]float64{}) {
		t.Fatalf("empty books produced shares %v", got)
	}
	e[ledger.L1Probe].Cycles = 25
	e[ledger.WalkFull].Cycles = 75
	got := AttributionShares(e)
	if got[ledger.L1Probe] != 25 || got[ledger.WalkFull] != 75 {
		t.Fatalf("shares = %v", got)
	}
	var sum float64
	for _, s := range got {
		sum += s
	}
	if sum != 100 {
		t.Fatalf("shares sum to %v, want 100", sum)
	}
}
