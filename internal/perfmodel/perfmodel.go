// Package perfmodel converts functional TLB/cache statistics into runtime
// estimates, following the paper's methodology (Sec 6.2): hit rates from
// functional simulation are weighted into program execution time using
// per-workload parameters that stand in for performance-counter
// measurements (base CPI with ideal translation, memory references per
// instruction).
package perfmodel

import "mixtlb/internal/mmu"

// Params characterizes a workload for the analytical model.
type Params struct {
	// BaseCPI is cycles per instruction with ideal (free) translation.
	BaseCPI float64
	// RefsPerInstr is the fraction of instructions that reference memory.
	RefsPerInstr float64
	// L1HitCycles is the baseline per-access TLB cost that overlaps the
	// cache access on real pipelines; only cycles above it count as
	// translation overhead.
	L1HitCycles uint64
}

// Default wraps workload-model constants with the default latency model.
func Default(baseCPI, refsPerInstr float64) Params {
	return Params{BaseCPI: baseCPI, RefsPerInstr: refsPerInstr, L1HitCycles: mmu.DefaultLatencies().L1Hit}
}

// Estimate is a runtime prediction.
type Estimate struct {
	Instructions      float64
	BaseCycles        float64
	TranslationCycles float64
	TotalCycles       float64
}

// PctTranslation returns the share of runtime spent translating — the
// Figure 1 / Figure 15(right) metric.
func (e Estimate) PctTranslation() float64 {
	if e.TotalCycles == 0 {
		return 0
	}
	return 100 * e.TranslationCycles / e.TotalCycles
}

// Runtime estimates execution time for a simulation that issued
// st.Accesses memory references.
func (p Params) Runtime(st mmu.Stats) Estimate {
	var e Estimate
	if p.RefsPerInstr <= 0 {
		p.RefsPerInstr = 0.33
	}
	e.Instructions = float64(st.Accesses) / p.RefsPerInstr
	e.BaseCycles = e.Instructions * p.BaseCPI
	overhead := float64(st.Cycles) - float64(st.Accesses*p.L1HitCycles)
	if overhead < 0 {
		overhead = 0
	}
	e.TranslationCycles = overhead
	e.TotalCycles = e.BaseCycles + e.TranslationCycles
	return e
}

// AvgWalkCycles returns the mean cycle cost of a charged page walk —
// the price a translation pays when every TLB level misses.
func AvgWalkCycles(st mmu.Stats) float64 {
	if st.Walks == 0 {
		return 0
	}
	return float64(st.WalkCycles) / float64(st.Walks)
}

// AvgVictimProbeCycles returns the mean cycle cost of a victim-level
// probe (a data-cache access or two, per tlb.Victim). The reach study
// compares it against AvgWalkCycles: a victim level only pays off while
// its probes stay cheaper than the walks they replace.
func AvgVictimProbeCycles(st mmu.Stats) float64 {
	if st.VictimProbes == 0 {
		return 0
	}
	return float64(st.VictimProbeCycles) / float64(st.VictimProbes)
}

// ImprovementPercent returns the % performance improvement of `test` over
// `base` for the same work — the Figure 14/15/18 metric:
// 100 * (baseTime - testTime) / baseTime.
func ImprovementPercent(base, test Estimate) float64 {
	if base.TotalCycles == 0 {
		return 0
	}
	return 100 * (base.TotalCycles - test.TotalCycles) / base.TotalCycles
}

// OverheadVsIdealPercent returns how much slower est runs than a perfect
// TLB (zero translation cycles) — the Figure 15(right) y-axis.
func (e Estimate) OverheadVsIdealPercent() float64 {
	if e.BaseCycles == 0 {
		return 0
	}
	return 100 * e.TranslationCycles / e.BaseCycles
}
