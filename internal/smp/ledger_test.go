package smp

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/chaos"
	"mixtlb/internal/ledger"
	"mixtlb/internal/mmu"
	"mixtlb/internal/simrand"
	"mixtlb/internal/workload"
)

// TestLedgerConservationUnderShootdowns audits attribution on a
// multi-core system whose cores take shootdown IPIs — including lost
// IPIs that the retry protocol re-delivers — between translation rounds.
// Each core carries its own ledger: conservation must hold per core, and
// every delivered invalidation must appear in that core's shootdown
// books.
func TestLedgerConservationUnderShootdowns(t *testing.T) {
	const cores = 3
	sys, _, base, fp := newSMP(t, mmu.DesignMix, cores)
	sys.SetChaos(chaos.NewInjector(5, chaos.Rates{IPILoss: 0.3, IPIDelay: 0.2}))
	ledgers := make([]*ledger.Ledger, cores)
	for i, c := range sys.Cores() {
		ledgers[i] = ledger.New(4)
		c.AttachLedger(ledgers[i])
	}
	streams := make([]workload.Stream, cores)
	for i := range streams {
		streams[i] = workload.NewZipf(base, fp, simrand.New(uint64(i)+9), 0.9, 0.2, uint64(i))
	}
	rng := simrand.New(0x5d0)
	for round := 0; round < 12; round++ {
		if err := sys.Run(streams, 6000); err != nil {
			t.Fatal(err)
		}
		off := addr.AlignedDown(rng.Uint64n(fp-(2<<20)), addr.Size2M)
		sys.Munmap(base+addr.V(off), 2<<20)
	}
	if sys.Stats().IPIsLost == 0 {
		t.Fatal("IPI loss never exercised; lost-IPI path untested")
	}
	for i, c := range sys.Cores() {
		if err := c.AuditLedger(); err != nil {
			t.Errorf("core %d: %v", i, err)
		}
		st := c.Stats()
		e := ledgers[i].Entries()
		if e[ledger.Shootdown].Events != st.Invalidations+st.Flushes {
			t.Errorf("core %d: shootdown events %d != invalidations+flushes %d",
				i, e[ledger.Shootdown].Events, st.Invalidations+st.Flushes)
		}
		if st.Invalidations == 0 {
			t.Errorf("core %d: munmap storm delivered no invalidations", i)
		}
	}
}
