package smp

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
)

// victimSMP builds a multi-core victima system over a 4KB-only address
// space: the small-page flood overflows every SRAM level, so the victim
// level churns with demotions and promotions throughout the run.
func victimSMP(t *testing.T, design mmu.Design, cores int) (*System, *osmm.AddressSpace, addr.V, uint64) {
	t.Helper()
	phys := physmem.NewBuddy(1 << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: osmm.BasePages})
	if err != nil {
		t.Fatal(err)
	}
	const fp = 64 << 20
	base, err := as.Mmap(fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Populate(base, fp); err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Cores: cores, Design: design}, as, cachesim.DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	return sys, as, base, fp
}

// victims returns each core's victim level.
func victims(t *testing.T, s *System) []*tlb.Victim {
	t.Helper()
	var out []*tlb.Victim
	for _, m := range s.Cores() {
		for _, lv := range m.LevelTLBs() {
			if v, ok := lv.(*tlb.Victim); ok {
				out = append(out, v)
			}
		}
	}
	if len(out) != len(s.Cores()) {
		t.Fatalf("found %d victim levels on %d cores", len(out), len(s.Cores()))
	}
	return out
}

// TestVictimNoStaleAfterShootdown is the coherence property for the
// cache-backed victim level: over a randomized seeded sequence of
// translations and munmap shootdowns, no core's victim level ever holds
// an entry for an unmapped page — a stale victim entry would serve a
// freed physical frame on the next deep hit.
func TestVictimNoStaleAfterShootdown(t *testing.T) {
	for _, design := range []mmu.Design{mmu.DesignVictima, mmu.DesignVictimaLite} {
		design := design
		t.Run(string(design), func(t *testing.T) {
			const cores = 2
			s, as, base, fp := victimSMP(t, design, cores)
			vs := victims(t, s)
			rng := simrand.New(0x57a1e + uint64(len(design)))
			for i := 0; i < 30000; i++ {
				c := int(rng.Uint64n(cores))
				off := rng.Uint64n(fp) &^ 7
				if r := s.Translate(c, tlb.Request{VA: base + addr.V(off), Write: rng.Bool(0.3)}); r.Faulted {
					t.Fatalf("access %d faulted at %v", i, base+addr.V(off))
				}
				if i%3000 != 2999 {
					continue
				}
				// Shoot down a random 2MB-aligned 4MB window, then scan
				// every victim for survivors from the unmapped range.
				start := base + addr.V(rng.Uint64n(fp)&^(addr.Size2M-1))
				length := uint64(4 << 20)
				if over := uint64(start-base) + length; over > fp {
					length = fp - uint64(start-base)
				}
				s.Munmap(start, length)
				end := start + addr.V(length)
				for ci, v := range vs {
					for _, tr := range v.Dump() {
						if tr.VA >= start && tr.VA < end {
							t.Fatalf("core %d: stale victim entry %v after munmap [%v,%v)",
								ci, tr.VA, start, end)
						}
						if _, ok := as.PageTable().Lookup(tr.VA); !ok {
							t.Fatalf("core %d: victim entry %v has no page-table backing", ci, tr.VA)
						}
					}
				}
			}
			agg := s.Aggregate()
			if agg.Demotions == 0 || agg.DeepHits == 0 {
				t.Fatalf("victim unexercised: demotions=%d deep hits=%d",
					agg.Demotions, agg.DeepHits)
			}
			// Full flush on every core leaves nothing behind.
			for _, m := range s.Cores() {
				m.Flush()
			}
			for ci, v := range vs {
				if n := len(v.Dump()); n != 0 {
					t.Fatalf("core %d: %d victim entries after Flush", ci, n)
				}
			}
		})
	}
}
