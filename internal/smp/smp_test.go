package smp

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/physmem"
	"mixtlb/internal/simrand"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

func newSMP(t *testing.T, design mmu.Design, cores int) (*System, *osmm.AddressSpace, addr.V, uint64) {
	t.Helper()
	phys := physmem.NewBuddy(1 << 30)
	as, err := osmm.New(phys, osmm.Config{Policy: osmm.THS})
	if err != nil {
		t.Fatal(err)
	}
	const fp = 256 << 20
	base, err := as.Mmap(fp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Populate(base, fp); err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Cores: cores, Design: design}, as, cachesim.DefaultHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	return sys, as, base, fp
}

func TestRunInterleavesCores(t *testing.T) {
	s, _, base, fp := newSMP(t, mmu.DesignMix, 4)
	streams := make([]workload.Stream, 4)
	for i := range streams {
		streams[i] = workload.NewSequential(base+addr.V(uint64(i)*fp/4), fp/4, 4096, false, uint64(i))
	}
	if err := s.Run(streams, 40000); err != nil {
		t.Fatal(err)
	}
	agg := s.Aggregate()
	if agg.Accesses != 40000 {
		t.Errorf("aggregate accesses = %d", agg.Accesses)
	}
	for i, c := range s.Cores() {
		if c.Stats().Accesses != 10000 {
			t.Errorf("core %d accesses = %d", i, c.Stats().Accesses)
		}
	}
}

func TestRunStreamMismatch(t *testing.T) {
	s, _, _, _ := newSMP(t, mmu.DesignSplit, 2)
	if err := s.Run(nil, 10); err == nil {
		t.Error("mismatched streams accepted")
	}
}

func TestMunmapShootsDownAllCores(t *testing.T) {
	s, as, base, _ := newSMP(t, mmu.DesignMix, 3)
	// Warm every core's TLB on the first 8MB.
	for c := 0; c < 3; c++ {
		for off := uint64(0); off < 8<<20; off += addr.Size4K {
			s.Translate(c, tlb.Request{VA: base + addr.V(off)})
		}
	}
	s.ResetStats()
	// Re-touch: all hits.
	for c := 0; c < 3; c++ {
		if r := s.Translate(c, tlb.Request{VA: base}); !r.L1Hit && !r.L2Hit {
			t.Fatalf("core %d not warm", c)
		}
	}
	s.Munmap(base, 4<<20)
	st := s.Stats()
	if st.Shootdowns != 2 { // two 2MB translations
		t.Errorf("shootdowns = %d", st.Shootdowns)
	}
	if st.IPIs != 6 {
		t.Errorf("IPIs = %d", st.IPIs)
	}
	// The unmapped range faults (OS remaps on demand); the surviving
	// range still hits.
	if _, ok := as.PageTable().Lookup(base); ok {
		t.Fatal("mapping survived munmap")
	}
	for c := 0; c < 3; c++ {
		r := s.Translate(c, tlb.Request{VA: base + addr.V(6<<20)})
		if !r.L1Hit && !r.L2Hit {
			t.Errorf("core %d lost an unrelated translation", c)
		}
	}
	// Remapped-on-demand region yields fresh frames, not stale PAs.
	r := s.Translate(0, tlb.Request{VA: base})
	tr, ok := as.PageTable().Lookup(base)
	if !ok || r.PA != tr.Translate(base) {
		t.Errorf("stale translation after shootdown: got %v want %v", r.PA, tr.Translate(base))
	}
}

// TestShootdownCorrectnessUnderRemap is the safety property: after
// munmap+remap with concurrent traffic, no core may ever return a stale
// physical address.
func TestShootdownCorrectnessUnderRemap(t *testing.T) {
	for _, design := range []mmu.Design{mmu.DesignSplit, mmu.DesignMix, mmu.DesignMixColt} {
		s, as, base, _ := newSMP(t, design, 2)
		rng := simrand.New(9)
		for round := 0; round < 30; round++ {
			// Random traffic on both cores.
			for i := 0; i < 500; i++ {
				va := base + addr.V(rng.Uint64n(64<<20)&^7)
				core := int(rng.Uint64n(2))
				r := s.Translate(core, tlb.Request{VA: va, Write: rng.Bool(0.3)})
				tr, ok := as.PageTable().Lookup(va)
				if !ok {
					t.Fatalf("%s: unmapped VA %v survived", design, va)
				}
				if r.PA != tr.Translate(va) {
					t.Fatalf("%s: stale PA for %v: got %v want %v", design, va, r.PA, tr.Translate(va))
				}
			}
			// Unmap a random 4MB chunk; it demand-remaps on next touch.
			off := rng.Uint64n(60<<20) &^ (addr.Size2M - 1)
			s.Munmap(base+addr.V(off), 4<<20)
		}
	}
}

func TestBitmapInvalidationKeepsNeighbours(t *testing.T) {
	// The Sec 4.4 contrast at system level: after unmapping one 2MB page
	// out of a coalesced run, a bitmap-encoded MIX TLB still hits on the
	// neighbouring superpages without re-walking.
	s, _, base, _ := newSMP(t, mmu.DesignMix, 1)
	for off := uint64(0); off < 16<<20; off += addr.Size4K {
		s.Translate(0, tlb.Request{VA: base + addr.V(off)})
	}
	s.ResetStats()
	s.Munmap(base+addr.V(2<<20), 2<<20)        // kill the second superpage
	r := s.Translate(0, tlb.Request{VA: base}) // neighbour
	if !r.L1Hit {
		t.Errorf("neighbour of invalidated member missed: %+v", r)
	}
}
