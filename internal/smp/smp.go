// Package smp models a multi-core CPU sharing one address space: every
// core has its own two-level TLB hierarchy, all cores share the page
// table, the cache hierarchy, and the OS — and page-table updates
// broadcast TLB shootdowns to every core (Sec 4.4's invalidation
// operations, exercised under real sharing).
//
// The interesting design consequence for MIX TLBs: invalidating one
// superpage touches mirror copies in many sets, and the two bundle
// encodings degrade differently — bitmaps clear one member bit and keep
// the bundle's neighbours cached, while range entries drop the whole
// coalesced bundle (the paper's simple option), making post-shootdown
// refill traffic visibly worse. InvalidationStudy in the experiments
// package quantifies this.
package smp

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/chaos"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

// Config sizes the system.
type Config struct {
	Cores  int
	Design mmu.Design
}

// maxIPIRetries bounds the shootdown retry protocol: after this many lost
// IPIs to one core, delivery is forced (the NMI-class fallback real
// kernels reach for when a shootdown acknowledgement never arrives).
const maxIPIRetries = 3

// Stats aggregates system-wide shootdown activity.
type Stats struct {
	// Shootdowns counts munmap-driven invalidation broadcasts (one per
	// unmapped translation).
	Shootdowns uint64
	// IPIs counts per-core interrupts sent (Shootdowns x cores, plus any
	// retries under fault injection).
	IPIs uint64

	// Fault-injection accounting (zero without an injector).
	IPIsLost         uint64 // deliveries dropped by the injector
	IPIRetries       uint64 // re-sends after a missing acknowledgement
	IPIsDelayed      uint64 // deliveries that arrived late (but arrived)
	ForcedDeliveries uint64 // NMI-class fallbacks after maxIPIRetries
}

// System is a multi-core machine over one OS address space.
type System struct {
	cfg    Config
	as     *osmm.AddressSpace
	caches *cachesim.Hierarchy
	cores  []*mmu.MMU
	chaos  *chaos.Injector
	stats  Stats

	// tel is the telemetry hook block, nil unless AttachTelemetry enabled
	// it.
	tel *smpTel
}

// New builds the system; all cores share the cache hierarchy and fault
// into the same OS.
func New(cfg Config, as *osmm.AddressSpace, caches *cachesim.Hierarchy) (*System, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	s := &System{cfg: cfg, as: as, caches: caches}
	for i := 0; i < cfg.Cores; i++ {
		m, err := mmu.Build(cfg.Design, as.PageTable(), as.PageTable(), caches, as.HandleFault)
		if err != nil {
			return nil, fmt.Errorf("smp: core %d: %w", i, err)
		}
		s.cores = append(s.cores, m)
	}
	return s, nil
}

// SetChaos attaches a fault injector to the shootdown interconnect: IPIs
// may be dropped (triggering the retry protocol) or delayed.
func (s *System) SetChaos(in *chaos.Injector) { s.chaos = in }

// Cores exposes the per-core MMUs.
func (s *System) Cores() []*mmu.MMU { return s.cores }

// Stats returns shootdown counters.
func (s *System) Stats() Stats { return s.stats }

// Translate services a reference on one core.
func (s *System) Translate(core int, req tlb.Request) mmu.Result {
	return s.cores[core].Translate(req)
}

// Run interleaves per-core streams round-robin for n total references.
func (s *System) Run(streams []workload.Stream, n uint64) error {
	if len(streams) != len(s.cores) {
		return fmt.Errorf("smp: %d streams for %d cores", len(streams), len(s.cores))
	}
	for i := uint64(0); i < n; i++ {
		c := int(i) % len(s.cores)
		ref := streams[c].Next()
		if r := s.cores[c].Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC}); r.Faulted {
			return fmt.Errorf("smp: core %d faulted at %v", c, ref.VA)
		}
	}
	return nil
}

// ResetStats zeroes every core's counters (shootdown counters retained).
func (s *System) ResetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
}

// Munmap unmaps a range through the OS and broadcasts the TLB shootdowns
// to every core, as an munmap syscall's IPI storm does. The initiating
// core waits for every acknowledgement before the unmap returns, so a
// lost IPI is retried (and eventually forced) rather than leaving a core
// with a stale translation.
func (s *System) Munmap(start addr.V, length uint64) {
	s.as.Munmap(start, length, func(tr pagetable.Translation) {
		s.stats.Shootdowns++
		before := s.stats.IPIs
		for _, c := range s.cores {
			s.deliverIPI(c, tr)
		}
		if s.tel != nil {
			s.tel.fanout.Observe(s.stats.IPIs - before)
		}
	})
}

// deliverIPI sends one shootdown IPI to one core under fault injection: a
// dropped delivery never acks, so the sender retries up to maxIPIRetries
// before forcing delivery. The invalidation always completes — the
// protocol trades extra IPIs for correctness, never correctness itself.
func (s *System) deliverIPI(c *mmu.MMU, tr pagetable.Translation) {
	for try := 0; ; try++ {
		s.stats.IPIs++
		if !s.chaos.DropIPI() {
			if s.chaos.DelayIPI() {
				s.stats.IPIsDelayed++
			}
			c.Invalidate(tr.VA, tr.Size)
			return
		}
		s.stats.IPIsLost++
		if try == maxIPIRetries {
			s.stats.ForcedDeliveries++
			c.Invalidate(tr.VA, tr.Size)
			return
		}
		s.stats.IPIRetries++
	}
}

// Aggregate sums all cores' MMU stats.
func (s *System) Aggregate() mmu.Stats {
	var total mmu.Stats
	for _, c := range s.cores {
		st := c.Stats()
		total.Accesses += st.Accesses
		total.L1Hits += st.L1Hits
		total.L2Hits += st.L2Hits
		total.DeepHits += st.DeepHits
		total.Walks += st.Walks
		total.Faults += st.Faults
		total.Cycles += st.Cycles
		total.WalkCycles += st.WalkCycles
		total.WalkRefs += st.WalkRefs
		total.DirtyMicroOps += st.DirtyMicroOps
		total.Invalidations += st.Invalidations
		total.PWCHits += st.PWCHits
		total.PWCMisses += st.PWCMisses
		total.PWCSkippedRefs += st.PWCSkippedRefs
		total.Demotions += st.Demotions
		total.DemotionDrops += st.DemotionDrops
		total.VictimEvictions += st.VictimEvictions
		total.VictimProbes += st.VictimProbes
		total.VictimProbeCycles += st.VictimProbeCycles
		total.ECC.Add(st.ECC)
		total.PTECorruptions += st.PTECorruptions
		total.OracleMismatches += st.OracleMismatches
		total.OracleRecoveries += st.OracleRecoveries
		total.OracleUnrecovered += st.OracleUnrecovered
		total.L1Lookup.Add(st.L1Lookup)
		total.L2Lookup.Add(st.L2Lookup)
		total.L1Fill.Add(st.L1Fill)
		total.L2Fill.Add(st.L2Fill)
	}
	return total
}

// NewFromSpec builds a system whose cores each construct a fresh
// hierarchy from spec — which need not be a registered design. Cores get
// distinct MMU names ("<design>.core<i>") so multi-core telemetry keeps
// per-core series. Used by experiments that sweep custom configurations.
func NewFromSpec(cores int, as *osmm.AddressSpace, caches *cachesim.Hierarchy, spec mmu.DesignSpec) (*System, error) {
	if cores <= 0 {
		cores = 4
	}
	s := &System{cfg: Config{Cores: cores, Design: mmu.Design(spec.Name)}, as: as, caches: caches}
	for i := 0; i < cores; i++ {
		cfg, err := spec.BuildConfig(as.PageTable())
		if err != nil {
			return nil, fmt.Errorf("smp: core %d: %w", i, err)
		}
		cfg.Name = fmt.Sprintf("%s.core%d", spec.Name, i)
		m, err := mmu.New(cfg, as.PageTable(), caches, as.HandleFault)
		if err != nil {
			return nil, fmt.Errorf("smp: core %d: %w", i, err)
		}
		s.cores = append(s.cores, m)
	}
	return s, nil
}
