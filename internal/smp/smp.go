// Package smp models a multi-core CPU sharing one address space: every
// core has its own two-level TLB hierarchy, all cores share the page
// table, the cache hierarchy, and the OS — and page-table updates
// broadcast TLB shootdowns to every core (Sec 4.4's invalidation
// operations, exercised under real sharing).
//
// The interesting design consequence for MIX TLBs: invalidating one
// superpage touches mirror copies in many sets, and the two bundle
// encodings degrade differently — bitmaps clear one member bit and keep
// the bundle's neighbours cached, while range entries drop the whole
// coalesced bundle (the paper's simple option), making post-shootdown
// refill traffic visibly worse. InvalidationStudy in the experiments
// package quantifies this.
package smp

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/cachesim"
	"mixtlb/internal/mmu"
	"mixtlb/internal/osmm"
	"mixtlb/internal/pagetable"
	"mixtlb/internal/tlb"
	"mixtlb/internal/workload"
)

// Config sizes the system.
type Config struct {
	Cores  int
	Design mmu.Design
}

// Stats aggregates system-wide shootdown activity.
type Stats struct {
	// Shootdowns counts munmap-driven invalidation broadcasts (one per
	// unmapped translation).
	Shootdowns uint64
	// IPIs counts per-core interrupts delivered (Shootdowns x cores).
	IPIs uint64
}

// System is a multi-core machine over one OS address space.
type System struct {
	cfg    Config
	as     *osmm.AddressSpace
	caches *cachesim.Hierarchy
	cores  []*mmu.MMU
	stats  Stats
}

// New builds the system; all cores share the cache hierarchy and fault
// into the same OS.
func New(cfg Config, as *osmm.AddressSpace, caches *cachesim.Hierarchy) *System {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	s := &System{cfg: cfg, as: as, caches: caches}
	for i := 0; i < cfg.Cores; i++ {
		m := mmu.Build(cfg.Design, as.PageTable(), as.PageTable(), caches, as.HandleFault)
		s.cores = append(s.cores, m)
	}
	return s
}

// Cores exposes the per-core MMUs.
func (s *System) Cores() []*mmu.MMU { return s.cores }

// Stats returns shootdown counters.
func (s *System) Stats() Stats { return s.stats }

// Translate services a reference on one core.
func (s *System) Translate(core int, req tlb.Request) mmu.Result {
	return s.cores[core].Translate(req)
}

// Run interleaves per-core streams round-robin for n total references.
func (s *System) Run(streams []workload.Stream, n uint64) error {
	if len(streams) != len(s.cores) {
		return fmt.Errorf("smp: %d streams for %d cores", len(streams), len(s.cores))
	}
	for i := uint64(0); i < n; i++ {
		c := int(i) % len(s.cores)
		ref := streams[c].Next()
		if r := s.cores[c].Translate(tlb.Request{VA: ref.VA, Write: ref.Write, PC: ref.PC}); r.Faulted {
			return fmt.Errorf("smp: core %d faulted at %v", c, ref.VA)
		}
	}
	return nil
}

// ResetStats zeroes every core's counters (shootdown counters retained).
func (s *System) ResetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
}

// Munmap unmaps a range through the OS and broadcasts the TLB shootdowns
// to every core, as an munmap syscall's IPI storm does.
func (s *System) Munmap(start addr.V, length uint64) {
	s.as.Munmap(start, length, func(tr pagetable.Translation) {
		s.stats.Shootdowns++
		for _, c := range s.cores {
			c.Invalidate(tr.VA, tr.Size)
			s.stats.IPIs++
		}
	})
}

// Aggregate sums all cores' MMU stats.
func (s *System) Aggregate() mmu.Stats {
	var total mmu.Stats
	for _, c := range s.cores {
		st := c.Stats()
		total.Accesses += st.Accesses
		total.L1Hits += st.L1Hits
		total.L2Hits += st.L2Hits
		total.Walks += st.Walks
		total.Faults += st.Faults
		total.Cycles += st.Cycles
		total.WalkCycles += st.WalkCycles
		total.WalkRefs += st.WalkRefs
		total.DirtyMicroOps += st.DirtyMicroOps
		total.Invalidations += st.Invalidations
		total.L1Lookup.Add(st.L1Lookup)
		total.L2Lookup.Add(st.L2Lookup)
		total.L1Fill.Add(st.L1Fill)
		total.L2Fill.Add(st.L2Fill)
	}
	return total
}

// NewWithTLBs builds a system whose cores use explicitly constructed TLB
// pairs instead of a registered design — each core gets a fresh (L1, L2)
// from build. Used by experiments that sweep custom configurations.
func NewWithTLBs(cores int, as *osmm.AddressSpace, caches *cachesim.Hierarchy, build func() (tlb.TLB, tlb.TLB)) *System {
	if cores <= 0 {
		cores = 4
	}
	s := &System{cfg: Config{Cores: cores}, as: as, caches: caches}
	for i := 0; i < cores; i++ {
		l1, l2 := build()
		m := mmu.New(mmu.Config{Name: fmt.Sprintf("custom.core%d", i), L1: l1, L2: l2},
			as.PageTable(), caches, as.HandleFault)
		s.cores = append(s.cores, m)
	}
	return s
}
