package smp

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/chaos"
	"mixtlb/internal/mmu"
	"mixtlb/internal/tlb"
)

// TestZeroRateChaosKeepsAccounting attaches a zero-rate injector and
// checks the shootdown protocol is byte-for-byte the no-chaos one: no
// retries, no forced deliveries, IPIs == shootdowns x cores.
func TestZeroRateChaosKeepsAccounting(t *testing.T) {
	s, _, base, _ := newSMP(t, mmu.DesignMix, 3)
	s.SetChaos(chaos.NewInjector(1, chaos.Rates{}))
	for c := 0; c < 3; c++ {
		for off := uint64(0); off < 8<<20; off += addr.Size4K {
			s.Translate(c, tlb.Request{VA: base + addr.V(off)})
		}
	}
	s.Munmap(base, 4<<20)
	st := s.Stats()
	if st.Shootdowns != 2 || st.IPIs != 6 {
		t.Errorf("shootdowns=%d IPIs=%d, want 2 and 6", st.Shootdowns, st.IPIs)
	}
	if st.IPIsLost != 0 || st.IPIRetries != 0 || st.IPIsDelayed != 0 || st.ForcedDeliveries != 0 {
		t.Errorf("zero-rate chaos recorded faults: %+v", st)
	}
}

// TestLostIPIsForcedThrough drops every IPI: after maxIPIRetries the
// delivery is forced, so every invalidation still lands and no core ever
// serves a stale translation for the unmapped range.
func TestLostIPIsForcedThrough(t *testing.T) {
	const cores = 3
	s, as, base, _ := newSMP(t, mmu.DesignMix, cores)
	s.SetChaos(chaos.NewInjector(2, chaos.Rates{IPILoss: 1}))
	for c := 0; c < cores; c++ {
		for off := uint64(0); off < 8<<20; off += addr.Size4K {
			s.Translate(c, tlb.Request{VA: base + addr.V(off)})
		}
	}
	s.ResetStats()
	s.Munmap(base, 4<<20)
	st := s.Stats()
	if st.Shootdowns != 2 {
		t.Fatalf("shootdowns = %d", st.Shootdowns)
	}
	wantDeliveries := st.Shootdowns * cores
	if st.ForcedDeliveries != wantDeliveries {
		t.Errorf("forced deliveries = %d, want %d", st.ForcedDeliveries, wantDeliveries)
	}
	// Each delivery burns 1 + maxIPIRetries attempts before the force.
	if want := wantDeliveries * (1 + maxIPIRetries); st.IPIs != want {
		t.Errorf("IPIs = %d, want %d", st.IPIs, want)
	}
	if st.IPIRetries != wantDeliveries*maxIPIRetries {
		t.Errorf("retries = %d", st.IPIRetries)
	}
	// Correctness despite the storm: the page table has no mapping, and
	// no core's TLB hits on the shot-down range.
	if _, ok := as.PageTable().Lookup(base); ok {
		t.Fatal("range still mapped")
	}
	agg := s.Aggregate()
	if want := wantDeliveries; agg.Invalidations != want {
		t.Errorf("invalidations = %d, want %d (every IPI must land)", agg.Invalidations, want)
	}
	for c := 0; c < cores; c++ {
		r := s.Translate(c, tlb.Request{VA: base})
		if r.L1Hit || r.L2Hit {
			t.Errorf("core %d served a stale translation after forced shootdown", c)
		}
	}
}

// TestDelayedIPIsStillDeliver delays (but never drops) every IPI: the
// accounting notes the delays and the invalidations all complete with no
// retries.
func TestDelayedIPIsStillDeliver(t *testing.T) {
	s, _, base, _ := newSMP(t, mmu.DesignMix, 2)
	s.SetChaos(chaos.NewInjector(3, chaos.Rates{IPIDelay: 1}))
	for c := 0; c < 2; c++ {
		for off := uint64(0); off < 4<<20; off += addr.Size4K {
			s.Translate(c, tlb.Request{VA: base + addr.V(off)})
		}
	}
	s.Munmap(base, 2<<20)
	st := s.Stats()
	if st.IPIsDelayed != st.IPIs {
		t.Errorf("delayed = %d of %d IPIs, want all", st.IPIsDelayed, st.IPIs)
	}
	if st.IPIsLost != 0 || st.ForcedDeliveries != 0 {
		t.Errorf("delay-only chaos dropped IPIs: %+v", st)
	}
}

// TestChaoticShootdownsUnderOracle runs sustained traffic with lossy IPIs,
// TLB corruption, and the oracle attached on every core: no mismatch may
// go unrecovered.
func TestChaoticShootdownsUnderOracle(t *testing.T) {
	const cores = 2
	s, as, base, fp := newSMP(t, mmu.DesignMix, cores)
	in := chaos.NewInjector(4, chaos.Rates{TLBCorrupt: 0.01, SilentFrac: 0.5, IPILoss: 0.3})
	s.SetChaos(in)
	or := chaos.NewOracle(as.PageTable())
	for _, c := range s.Cores() {
		c.InjectFaults(in)
		c.AttachOracle(or)
	}
	for round := 0; round < 20; round++ {
		for c := 0; c < cores; c++ {
			for i := 0; i < 500; i++ {
				va := base + addr.V((uint64(round*7919+i*4096))%(fp-addr.Size4K))
				if r := s.Translate(c, tlb.Request{VA: va}); r.Faulted {
					t.Fatalf("core %d faulted at %v", c, va)
				}
			}
		}
		off := addr.AlignedDown(uint64(round)*(2<<20)%(fp-(2<<20)), addr.Size2M)
		s.Munmap(base+addr.V(off), 2<<20)
	}
	agg := s.Aggregate()
	if agg.ECC.SilentCorruptions == 0 && agg.ECC.ParityDetected == 0 {
		t.Error("corruption never injected")
	}
	if agg.OracleUnrecovered != 0 {
		t.Errorf("%d accesses stayed wrong under chaos", agg.OracleUnrecovered)
	}
}
