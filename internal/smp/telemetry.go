package smp

import "mixtlb/internal/telemetry"

// smpTel holds the system's pre-resolved telemetry handles (nil when
// disabled, the default).
type smpTel struct {
	col    *telemetry.Collector
	fanout *telemetry.Histogram
}

// fanoutBounds buckets IPIs sent per shootdown broadcast (cores plus any
// chaos-driven retries).
var fanoutBounds = []uint64{1, 2, 4, 8, 16, 32, 64}

// AttachTelemetry implements telemetry.Instrumentable, forwarding the
// collector to every core's MMU. Core MMUs share a design name, so their
// series merge additively — a deliberate whole-system view that stays
// schedule-independent.
func (s *System) AttachTelemetry(c *telemetry.Collector) {
	for _, m := range s.cores {
		m.AttachTelemetry(c)
	}
	if c == nil {
		s.tel = nil
		return
	}
	s.tel = &smpTel{
		col:    c,
		fanout: c.Histogram("smp_shootdown_fanout_ipis", fanoutBounds),
	}
}

// FlushTelemetry exports the shootdown counters and forwards the flush to
// every core. Call once after measurement.
func (s *System) FlushTelemetry() {
	for _, m := range s.cores {
		m.FlushTelemetry()
	}
	if s.tel == nil {
		return
	}
	c := s.tel.col
	st := s.stats
	c.Counter("smp_shootdowns_total").Add(st.Shootdowns)
	c.Counter("smp_ipis_total").Add(st.IPIs)
	c.Counter("smp_ipis_lost_total").Add(st.IPIsLost)
	c.Counter("smp_ipi_retries_total").Add(st.IPIRetries)
	c.Counter("smp_ipis_delayed_total").Add(st.IPIsDelayed)
	c.Counter("smp_forced_deliveries_total").Add(st.ForcedDeliveries)
}
