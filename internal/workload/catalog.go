package workload

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// Class groups workloads the way the paper reports them (Sec 6.4).
type Class int

const (
	// SpecParsec covers the Spec and PARSEC suites.
	SpecParsec Class = iota
	// BigMemory covers gups, graph processing, memcached and Cloudsuite.
	BigMemory
)

// String names the class.
func (c Class) String() string {
	if c == SpecParsec {
		return "spec+parsec"
	}
	return "big-memory"
}

// Spec describes one named workload: its reference-stream builder and the
// analytical-model parameters that stand in for the paper's performance
// counter measurements (base CPI excluding translation, and memory
// references per instruction).
type Spec struct {
	Name  string
	Class Class
	// BaseCPI is the cycles-per-instruction the core achieves with ideal
	// address translation (perf-counter stand-in).
	BaseCPI float64
	// RefsPerInstr is the fraction of instructions that access memory.
	RefsPerInstr float64
	// Build constructs the reference stream over [base, base+footprint).
	Build func(base addr.V, footprint uint64, rng *simrand.Source) Stream
}

// Catalog returns the workload suite. Footprints are chosen by the
// caller; the paper scales everything to 80GB on real hardware, while the
// default experiments here use 1-4GB (still thousands of TLB reaches).
func Catalog() []Spec {
	return []Spec{
		{
			// mcf: pointer-chasing over network-simplex arcs with
			// sequential refresh scans — Spec's TLB killer.
			Name: "mcf", Class: SpecParsec, BaseCPI: 1.9, RefsPerInstr: 0.35,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				r := region{base, fp}
				return newMix(rng.Split(),
					weighted{newChase(r, rng, pc("mcf", 0)), 0.7},
					weighted{newSeq(r, 64, false, pc("mcf", 1)), 0.3},
				)
			},
		},
		{
			// omnetpp: event-queue pointer chasing over a hot region plus
			// a skewed object heap.
			Name: "omnetpp", Class: SpecParsec, BaseCPI: 1.4, RefsPerInstr: 0.33,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				hot := region{base, fp / 8}
				heap := region{base + addr.V(fp/8), fp - fp/8}
				return newMix(rng.Split(),
					weighted{newChase(hot, rng, pc("omnetpp", 0)), 0.5},
					weighted{newZipf(heap, rng.Split(), 0.8, 0.2, pc("omnetpp", 1)), 0.5},
				)
			},
		},
		{
			// cactus: structured-grid stencil sweeps.
			Name: "cactus", Class: SpecParsec, BaseCPI: 1.1, RefsPerInstr: 0.40,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				return newStencil(region{base, fp}, 4<<20, pc("cactus", 0))
			},
		},
		{
			// canneal: random element swaps across a huge netlist.
			Name: "canneal", Class: SpecParsec, BaseCPI: 1.6, RefsPerInstr: 0.30,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				return newUniform(region{base, fp}, rng.Split(), 0.3, pc("canneal", 0))
			},
		},
		{
			// streamcluster: streaming point reads against hot centers.
			Name: "streamcluster", Class: SpecParsec, BaseCPI: 1.0, RefsPerInstr: 0.45,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				points := region{base, fp - fp/16}
				centers := region{base + addr.V(fp-fp/16), fp / 16}
				return newMix(rng.Split(),
					weighted{newSeq(points, 64, false, pc("streamcluster", 0)), 0.8},
					weighted{newUniform(centers, rng.Split(), 0.5, pc("streamcluster", 1)), 0.2},
				)
			},
		},
		{
			// xz: sliding-window compression — sequential with local
			// random match probes.
			Name: "xz", Class: SpecParsec, BaseCPI: 1.2, RefsPerInstr: 0.28,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				r := region{base, fp}
				return newMix(rng.Split(),
					weighted{newSeq(r, 16, true, pc("xz", 0)), 0.6},
					weighted{newZipf(r, rng.Split(), 0.6, 0, pc("xz", 1)), 0.4},
				)
			},
		},
		{
			// gups: uniform random read-modify-writes, the canonical
			// big-memory TLB stressor.
			Name: "gups", Class: BigMemory, BaseCPI: 0.9, RefsPerInstr: 0.50,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				return newUniform(region{base, fp}, rng.Split(), 0.5, pc("gups", 0))
			},
		},
		{
			// graph500: BFS over a power-law graph — skewed vertex reads
			// plus sequential frontier/edge scans.
			Name: "graph500", Class: BigMemory, BaseCPI: 1.7, RefsPerInstr: 0.38,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				vertices := region{base, fp / 2}
				edges := region{base + addr.V(fp/2), fp - fp/2}
				return newMix(rng.Split(),
					weighted{newZipf(vertices, rng.Split(), 0.99, 0.05, pc("graph500", 0)), 0.6},
					weighted{newSeq(edges, 64, false, pc("graph500", 1)), 0.4},
				)
			},
		},
		{
			// memcached: hash-table GET/SET with Zipf-popular keys.
			Name: "memcached", Class: BigMemory, BaseCPI: 1.3, RefsPerInstr: 0.36,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				return newHash(region{base, fp}, rng.Split(), 0.95, 0.1, pc("memcached", 0))
			},
		},
		{
			// data-analytics (Cloudsuite): scan-heavy joins with hashed
			// build sides.
			Name: "data-analytics", Class: BigMemory, BaseCPI: 1.2, RefsPerInstr: 0.42,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				scanSide := region{base, fp / 2}
				buildSide := region{base + addr.V(fp/2), fp - fp/2}
				return newMix(rng.Split(),
					weighted{newSeq(scanSide, 64, false, pc("analytics", 0)), 0.5},
					weighted{newHash(buildSide, rng.Split(), 0.9, 0.02, pc("analytics", 1)), 0.5},
				)
			},
		},
		{
			// web-search (Cloudsuite): Zipf-popular terms, each expanding
			// into a sequential postings burst.
			Name: "web-search", Class: BigMemory, BaseCPI: 1.5, RefsPerInstr: 0.34,
			Build: func(base addr.V, fp uint64, rng *simrand.Source) Stream {
				index := region{base, fp}
				return newMix(rng.Split(),
					weighted{newZipf(index, rng.Split(), 0.9, 0, pc("search", 0)), 0.4},
					weighted{newSeq(index, 64, false, pc("search", 1)), 0.6},
				)
			},
		},
	}
}

// ByName finds a catalog entry.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the catalog's workload names in order.
func Names() []string {
	specs := Catalog()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// pc derives a stable synthetic program counter for a workload pattern
// site, giving page-size predictors realistic PC locality.
func pc(name string, site int) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h ^ uint64(site)<<4
}
