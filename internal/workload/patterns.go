// Package workload generates deterministic synthetic memory-reference
// streams that mimic the locality structure of the paper's evaluation
// workloads (Sec 6.4): Spec/PARSEC applications and big-memory server
// workloads (gups, graph processing, memcached, Cloudsuite).
//
// TLB behaviour is determined by the virtual-address stream's reuse and
// locality, not by instruction semantics, so each named workload is a
// composition of a small pattern library — sequential scans, strides,
// uniform and Zipf-distributed random access, pointer chasing, hash-table
// probing, and stencils — with footprints that dwarf TLB reach.
package workload

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// Ref is one memory reference presented to an MMU.
type Ref struct {
	VA    addr.V
	Write bool
	PC    uint64 // issuing instruction, for page-size predictors
}

// Stream is an infinite deterministic reference stream.
type Stream interface {
	Next() Ref
}

// region describes the VA window a pattern runs over.
type region struct {
	base addr.V
	size uint64
}

func (r region) at(off uint64) addr.V { return r.base + addr.V(off%r.size) }

// seqStream scans the region with a fixed stride, wrapping around — the
// streaming pattern of xz/streamcluster scans and BFS frontiers.
type seqStream struct {
	r      region
	stride uint64
	pos    uint64
	write  bool
	pc     uint64
}

func newSeq(r region, stride uint64, write bool, pc uint64) *seqStream {
	if stride == 0 {
		stride = 8
	}
	return &seqStream{r: r, stride: stride, write: write, pc: pc}
}

func (s *seqStream) Next() Ref {
	va := s.r.at(s.pos)
	s.pos += s.stride
	return Ref{VA: va, Write: s.write, PC: s.pc}
}

// uniformStream touches uniformly random words — gups and canneal's
// essence, the TLB worst case.
type uniformStream struct {
	r     region
	rng   *simrand.Source
	write float64
	pc    uint64
}

func newUniform(r region, rng *simrand.Source, writeFrac float64, pc uint64) *uniformStream {
	return &uniformStream{r: r, rng: rng, write: writeFrac, pc: pc}
}

func (s *uniformStream) Next() Ref {
	off := s.rng.Uint64n(s.r.size) &^ 7
	return Ref{VA: s.r.at(off), Write: s.rng.Bool(s.write), PC: s.pc}
}

// zipfStream touches pages with Zipf-distributed popularity and a random
// offset within the page — hot-set behaviour of key-value stores and
// graph vertices.
type zipfStream struct {
	r     region
	z     *simrand.Zipf
	rng   *simrand.Source
	perm  []uint32 // page permutation so hot pages scatter across the VA space
	write float64
	pc    uint64
}

func newZipf(r region, rng *simrand.Source, theta, writeFrac float64, pc uint64) *zipfStream {
	pages := r.size / addr.Size4K
	if pages == 0 {
		pages = 1
	}
	s := &zipfStream{
		r: r, rng: rng, write: writeFrac, pc: pc,
		z: simrand.NewZipf(rng.Split(), pages, theta),
	}
	// Scatter popularity ranks over the address space: real hot keys are
	// not physically clustered at the start of the heap.
	s.perm = make([]uint32, pages)
	for i := range s.perm {
		s.perm[i] = uint32(i)
	}
	shuf := rng.Split()
	shuf.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	return s
}

func (s *zipfStream) Next() Ref {
	page := uint64(s.perm[s.z.Next()%uint64(len(s.perm))])
	off := page*addr.Size4K + (s.rng.Uint64n(addr.Size4K) &^ 7)
	return Ref{VA: s.r.at(off), Write: s.rng.Bool(s.write), PC: s.pc}
}

// chaseStream follows a precomputed random cycle over cache-line-sized
// nodes — mcf/omnetpp pointer chasing, the classic latency-bound pattern.
type chaseStream struct {
	r     region
	next  []uint32 // node permutation cycle
	cur   uint32
	nodes uint64
	pc    uint64
}

// chaseNodeBytes spaces chase nodes a cache line apart within pages.
const chaseNodeBytes = 64

func newChase(r region, rng *simrand.Source, pc uint64) *chaseStream {
	nodes := r.size / chaseNodeBytes
	const maxNodes = 1 << 22 // cap index memory; reuse distance is plenty
	if nodes > maxNodes {
		nodes = maxNodes
	}
	if nodes < 2 {
		nodes = 2
	}
	// Sattolo's algorithm: a single cycle visiting every node.
	next := make([]uint32, nodes)
	order := make([]uint32, nodes)
	for i := range order {
		order[i] = uint32(i)
	}
	sh := rng.Split()
	sh.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i := 0; i < len(order)-1; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[len(order)-1]] = order[0]
	return &chaseStream{r: r, next: next, nodes: nodes, pc: pc}
}

func (s *chaseStream) Next() Ref {
	// Spread the capped node index space over the whole region so large
	// footprints are fully covered.
	span := s.r.size / s.nodes
	off := uint64(s.cur) * span
	s.cur = s.next[s.cur]
	return Ref{VA: s.r.at(off &^ 7), PC: s.pc}
}

// hashStream models a hash-table: a Zipf-popular key hashes to a bucket
// (random page), then a short chain walk follows, optionally writing —
// memcached GET/SET structure.
type hashStream struct {
	r        region
	z        *simrand.Zipf
	rng      *simrand.Source
	chainLen int
	chainPos int
	curOff   uint64
	write    float64
	pc       uint64
}

func newHash(r region, rng *simrand.Source, theta, writeFrac float64, pc uint64) *hashStream {
	keys := r.size / 256
	if keys == 0 {
		keys = 1
	}
	return &hashStream{
		r: r, rng: rng, write: writeFrac, pc: pc,
		z: simrand.NewZipf(rng.Split(), keys, theta),
	}
}

func (s *hashStream) Next() Ref {
	if s.chainPos == 0 {
		key := s.z.Next()
		h := key * 0x9e3779b97f4a7c15
		s.curOff = (h % s.r.size) &^ 7
		s.chainLen = 1 + int(s.rng.Uint64n(3))
		s.chainPos = s.chainLen
	}
	s.chainPos--
	off := s.curOff
	// Chain entries live on different pages (separately allocated).
	s.curOff = (s.curOff + 0x13b000) % s.r.size
	write := s.chainPos == 0 && s.rng.Bool(s.write)
	return Ref{VA: s.r.at(off), Write: write, PC: s.pc}
}

// stencilStream sweeps a 2D grid touching the 5-point neighbourhood —
// cactusADM/hotspot structure: strong spatial locality with row-stride
// jumps.
type stencilStream struct {
	r        region
	rowBytes uint64
	pos      uint64
	phase    int
	pc       uint64
}

func newStencil(r region, rowBytes uint64, pc uint64) *stencilStream {
	if rowBytes == 0 || rowBytes > r.size {
		rowBytes = 1 << 20
	}
	return &stencilStream{r: r, rowBytes: rowBytes, pc: pc}
}

func (s *stencilStream) Next() Ref {
	var off uint64
	switch s.phase {
	case 0:
		off = s.pos
	case 1:
		off = s.pos + s.rowBytes // south
	case 2:
		off = s.pos + s.r.size - s.rowBytes // north (wrapped)
	case 3:
		off = s.pos + 8 // east; also advances the sweep
		s.pos += 8
	}
	write := s.phase == 3
	s.phase = (s.phase + 1) % 4
	return Ref{VA: s.r.at(off &^ 7), Write: write, PC: s.pc}
}

// mixStream interleaves component streams with fixed weights.
type mixStream struct {
	streams []Stream
	weights []float64
	rng     *simrand.Source
}

func newMix(rng *simrand.Source, parts ...weighted) *mixStream {
	m := &mixStream{rng: rng}
	for _, p := range parts {
		m.streams = append(m.streams, p.s)
		m.weights = append(m.weights, p.w)
	}
	return m
}

type weighted struct {
	s Stream
	w float64
}

func (m *mixStream) Next() Ref {
	x := m.rng.Float64()
	var cum float64
	for i, w := range m.weights {
		cum += w
		if x < cum {
			return m.streams[i].Next()
		}
	}
	return m.streams[len(m.streams)-1].Next()
}
