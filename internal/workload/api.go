package workload

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// Exported pattern constructors. The named workloads in Catalog compose
// these; the GPU model and the examples build their own streams from the
// same library.

// NewSequential returns a stream scanning [base, base+size) with the given
// stride (bytes), wrapping around. write marks every reference a store.
func NewSequential(base addr.V, size, stride uint64, write bool, pcVal uint64) Stream {
	return newSeq(region{base, size}, stride, write, pcVal)
}

// NewUniform returns uniformly random references over the window, each a
// store with probability writeFrac.
func NewUniform(base addr.V, size uint64, rng *simrand.Source, writeFrac float64, pcVal uint64) Stream {
	return newUniform(region{base, size}, rng, writeFrac, pcVal)
}

// NewZipf returns page-granular Zipf-popular references (theta in (0,1)).
func NewZipf(base addr.V, size uint64, rng *simrand.Source, theta, writeFrac float64, pcVal uint64) Stream {
	return newZipf(region{base, size}, rng, theta, writeFrac, pcVal)
}

// NewPointerChase returns a stream following a random single-cycle
// permutation over the window.
func NewPointerChase(base addr.V, size uint64, rng *simrand.Source, pcVal uint64) Stream {
	return newChase(region{base, size}, rng, pcVal)
}

// NewHashTable returns hash-table probe traffic with Zipf-popular keys.
func NewHashTable(base addr.V, size uint64, rng *simrand.Source, theta, writeFrac float64, pcVal uint64) Stream {
	return newHash(region{base, size}, rng, theta, writeFrac, pcVal)
}

// NewStencil returns a 5-point 2D stencil sweep with the given row size.
func NewStencil(base addr.V, size, rowBytes uint64, pcVal uint64) Stream {
	return newStencil(region{base, size}, rowBytes, pcVal)
}

// Weighted pairs a stream with its mix probability.
type Weighted struct {
	Stream Stream
	Weight float64
}

// NewMix interleaves streams with the given weights (which should sum to
// 1; the final stream absorbs any remainder).
func NewMix(rng *simrand.Source, parts ...Weighted) Stream {
	ws := make([]weighted, len(parts))
	for i, p := range parts {
		ws[i] = weighted{p.Stream, p.Weight}
	}
	return newMix(rng, ws...)
}
