package workload

import (
	"fmt"
	"math"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// Exported pattern constructors. The named workloads in Catalog compose
// these; the GPU model and the examples build their own streams from the
// same library.

// NewSequential returns a stream scanning [base, base+size) with the given
// stride (bytes), wrapping around. write marks every reference a store.
func NewSequential(base addr.V, size, stride uint64, write bool, pcVal uint64) Stream {
	return newSeq(region{base, size}, stride, write, pcVal)
}

// NewUniform returns uniformly random references over the window, each a
// store with probability writeFrac.
func NewUniform(base addr.V, size uint64, rng *simrand.Source, writeFrac float64, pcVal uint64) Stream {
	return newUniform(region{base, size}, rng, writeFrac, pcVal)
}

// NewZipf returns page-granular Zipf-popular references (theta in (0,1)).
func NewZipf(base addr.V, size uint64, rng *simrand.Source, theta, writeFrac float64, pcVal uint64) Stream {
	return newZipf(region{base, size}, rng, theta, writeFrac, pcVal)
}

// NewPointerChase returns a stream following a random single-cycle
// permutation over the window.
func NewPointerChase(base addr.V, size uint64, rng *simrand.Source, pcVal uint64) Stream {
	return newChase(region{base, size}, rng, pcVal)
}

// NewHashTable returns hash-table probe traffic with Zipf-popular keys.
func NewHashTable(base addr.V, size uint64, rng *simrand.Source, theta, writeFrac float64, pcVal uint64) Stream {
	return newHash(region{base, size}, rng, theta, writeFrac, pcVal)
}

// NewStencil returns a 5-point 2D stencil sweep with the given row size.
func NewStencil(base addr.V, size, rowBytes uint64, pcVal uint64) Stream {
	return newStencil(region{base, size}, rowBytes, pcVal)
}

// Weighted pairs a stream with its mix probability.
type Weighted struct {
	Stream Stream
	Weight float64
}

// MixWeightError reports an invalid mix specification passed to NewMix.
type MixWeightError struct {
	Index  int     // offending component, or -1 when the aggregate is at fault
	Weight float64 // the offending weight, or the aggregate sum
	Reason string
}

func (e *MixWeightError) Error() string {
	if e.Index >= 0 {
		return fmt.Sprintf("workload: mix weight %v at index %d %s", e.Weight, e.Index, e.Reason)
	}
	return fmt.Sprintf("workload: mix weights %s (sum %v)", e.Reason, e.Weight)
}

// NewMix interleaves streams with the given weights. Every weight must be
// finite and non-negative and at least one must be positive, else a
// *MixWeightError is returned. Weights summing above 1 are rescaled to sum
// to 1; weights summing to at most 1 are used as-is, with the final stream
// absorbing the remainder.
func NewMix(rng *simrand.Source, parts ...Weighted) (Stream, error) {
	ws := make([]weighted, len(parts))
	sum := 0.0
	for i, p := range parts {
		w := p.Weight
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, &MixWeightError{Index: i, Weight: w, Reason: "is not a finite non-negative value"}
		}
		if p.Stream == nil {
			return nil, &MixWeightError{Index: i, Weight: w, Reason: "has a nil stream"}
		}
		ws[i] = weighted{p.Stream, w}
		sum += w
	}
	if sum == 0 {
		return nil, &MixWeightError{Index: -1, Weight: sum, Reason: "must include at least one positive weight"}
	}
	if sum > 1 {
		// Oversubscribed weights are rescaled so mixStream's cumulative
		// comparison covers [0,1). Weights already summing to at most 1
		// are deliberately left untouched: rescaling them would perturb
		// the floating-point cumulative thresholds (and hence the chosen
		// component for some draws) even when they nominally sum to 1.
		for i := range ws {
			ws[i].w /= sum
		}
	}
	return newMix(rng, ws...), nil
}

// MustMix is NewMix for statically-known weight tables; it panics on an
// invalid spec, in the manner of regexp.MustCompile.
func MustMix(rng *simrand.Source, parts ...Weighted) Stream {
	s, err := NewMix(rng, parts...)
	if err != nil {
		panic(err)
	}
	return s
}
