package workload

// BatchStream is a Stream that can deliver references in bulk into a
// caller-provided buffer. NextBatch(buf) must produce exactly the sequence
// len(buf) consecutive Next calls would — same values, same RNG
// consumption — so batched and scalar drivers are interchangeable. The
// payoff is dispatch cost: the driver pays one interface call per buffer
// instead of one per reference, and inside the concrete method the
// generator's own Next calls devirtualize and inline.
type BatchStream interface {
	Stream
	// NextBatch fills buf with the next len(buf) references and returns
	// the number written (always len(buf): streams are infinite).
	NextBatch(buf []Ref) int
}

// FillBatch fills buf from s, using NextBatch when the stream supports it
// and falling back to per-reference Next calls otherwise. It returns the
// number of references written (always len(buf)).
func FillBatch(s Stream, buf []Ref) int {
	if b, ok := s.(BatchStream); ok {
		return b.NextBatch(buf)
	}
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

// The pattern library implements NextBatch as a plain loop over the
// concrete Next: identical output by construction, with the interface
// dispatch hoisted out of the per-reference path.

func (s *seqStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (s *uniformStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (s *zipfStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (s *chaseStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (s *hashStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (s *stencilStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = s.Next()
	}
	return len(buf)
}

func (m *mixStream) NextBatch(buf []Ref) int {
	for i := range buf {
		buf[i] = m.Next()
	}
	return len(buf)
}
