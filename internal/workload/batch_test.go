package workload

import (
	"errors"
	"math"
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// generatorCases builds one fresh, deterministically-seeded instance of
// every pattern generator per call, so two calls yield independent streams
// producing identical sequences.
func generatorCases() []struct {
	name  string
	build func() Stream
} {
	const base = addr.V(1 << 32)
	return []struct {
		name  string
		build func() Stream
	}{
		{"seq", func() Stream { return NewSequential(base, 1<<22, 64, false, 7) }},
		{"uniform", func() Stream { return NewUniform(base, 1<<24, simrand.New(11), 0.3, 7) }},
		{"zipf", func() Stream { return NewZipf(base, 1<<24, simrand.New(12), 0.99, 0.2, 7) }},
		{"chase", func() Stream { return NewPointerChase(base, 1<<22, simrand.New(13), 7) }},
		{"hash", func() Stream { return NewHashTable(base, 1<<24, simrand.New(14), 0.99, 0.1, 7) }},
		{"stencil", func() Stream { return NewStencil(base, 1<<22, 4096, 7) }},
		{"mix", func() Stream {
			return MustMix(simrand.New(15),
				Weighted{Stream: NewSequential(base, 1<<22, 64, false, 1), Weight: 0.4},
				Weighted{Stream: NewUniform(base, 1<<24, simrand.New(16), 0.3, 2), Weight: 0.4},
				Weighted{Stream: NewStencil(base, 1<<22, 4096, 3), Weight: 0.2})
		}},
	}
}

// TestNextBatchMatchesNext verifies the BatchStream contract for every
// generator: NextBatch over ragged buffer sizes reproduces the scalar
// Next sequence exactly, including RNG consumption.
func TestNextBatchMatchesNext(t *testing.T) {
	const total = 10000
	sizes := []int{1, 3, 32, 257, 512}
	for _, tc := range generatorCases() {
		t.Run(tc.name, func(t *testing.T) {
			scalar, batched := tc.build(), tc.build()
			if _, ok := batched.(BatchStream); !ok {
				t.Fatalf("%T does not implement BatchStream", batched)
			}
			want := make([]Ref, total)
			for i := range want {
				want[i] = scalar.Next()
			}
			got := make([]Ref, 0, total)
			buf := make([]Ref, 512)
			for c := 0; len(got) < total; c++ {
				n := sizes[c%len(sizes)]
				if rem := total - len(got); n > rem {
					n = rem
				}
				if k := FillBatch(batched, buf[:n]); k != n {
					t.Fatalf("FillBatch = %d, want %d", k, n)
				}
				got = append(got, buf[:n]...)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ref %d: batch %+v, scalar %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFillBatchFallback checks that a Stream without NextBatch still fills
// the buffer via scalar Next calls.
func TestFillBatchFallback(t *testing.T) {
	s := scalarOnly{next: NewSequential(0x1000, 1<<20, 8, false, 1)}
	buf := make([]Ref, 64)
	if k := FillBatch(s, buf); k != len(buf) {
		t.Fatalf("FillBatch = %d, want %d", k, len(buf))
	}
	want := NewSequential(0x1000, 1<<20, 8, false, 1)
	for i := range buf {
		if r := want.Next(); buf[i] != r {
			t.Fatalf("ref %d: %+v, want %+v", i, buf[i], r)
		}
	}
}

// scalarOnly hides a stream's NextBatch so FillBatch takes the fallback.
type scalarOnly struct{ next Stream }

func (s scalarOnly) Next() Ref { return s.next.Next() }

// TestNextBatchZeroAlloc pins steady-state NextBatch at zero heap
// allocations for every generator.
func TestNextBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, tc := range generatorCases() {
		t.Run(tc.name, func(t *testing.T) {
			bs := tc.build().(BatchStream)
			buf := make([]Ref, 512)
			bs.NextBatch(buf) // warm up
			if avg := testing.AllocsPerRun(20, func() { bs.NextBatch(buf) }); avg != 0 {
				t.Errorf("NextBatch allocates %.2f times per 512 refs", avg)
			}
		})
	}
}

func TestNewMixValidation(t *testing.T) {
	base := addr.V(1 << 32)
	part := func(w float64) Weighted {
		return Weighted{Stream: NewSequential(base, 1<<20, 8, false, 1), Weight: w}
	}
	cases := []struct {
		name      string
		parts     []Weighted
		wantIndex int
	}{
		{"negative", []Weighted{part(0.5), part(-0.1)}, 1},
		{"nan", []Weighted{part(math.NaN())}, 0},
		{"inf", []Weighted{part(math.Inf(1))}, 0},
		{"all-zero", []Weighted{part(0), part(0)}, -1},
		{"empty", nil, -1},
		{"nil-stream", []Weighted{{Stream: nil, Weight: 1}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewMix(simrand.New(1), tc.parts...)
			if s != nil || err == nil {
				t.Fatalf("NewMix = (%v, %v), want a *MixWeightError", s, err)
			}
			var me *MixWeightError
			if !errors.As(err, &me) {
				t.Fatalf("error type %T, want *MixWeightError", err)
			}
			if me.Index != tc.wantIndex {
				t.Errorf("Index = %d, want %d", me.Index, tc.wantIndex)
			}
			if me.Error() == "" {
				t.Error("empty error message")
			}
		})
	}

	t.Run("valid", func(t *testing.T) {
		s, err := NewMix(simrand.New(1), part(0.6), part(0.4))
		if err != nil || s == nil {
			t.Fatalf("NewMix = (%v, %v)", s, err)
		}
	})
	t.Run("oversubscribed-rescales", func(t *testing.T) {
		s, err := NewMix(simrand.New(1), part(3), part(1))
		if err != nil || s == nil {
			t.Fatalf("NewMix = (%v, %v)", s, err)
		}
		m := s.(*mixStream)
		if got := m.weights[0] + m.weights[1]; math.Abs(got-1) > 1e-12 {
			t.Errorf("rescaled weights sum to %v, want 1", got)
		}
	})
	t.Run("must-mix-panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("MustMix did not panic on an invalid spec")
			}
		}()
		MustMix(simrand.New(1), part(-1))
	})
}
