//go:build race

package workload

// raceEnabled reports whether the test binary was built with -race.
const raceEnabled = true
