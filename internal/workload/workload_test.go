package workload

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

const testFootprint = 64 << 20

func buildAll(t *testing.T, seed uint64) map[string]Stream {
	t.Helper()
	out := make(map[string]Stream)
	for _, spec := range Catalog() {
		out[spec.Name] = spec.Build(0x10000000000, testFootprint, simrand.New(seed))
	}
	return out
}

func TestAllStreamsStayInFootprint(t *testing.T) {
	base := addr.V(0x10000000000)
	for name, s := range buildAll(t, 1) {
		for i := 0; i < 100000; i++ {
			ref := s.Next()
			if ref.VA < base || uint64(ref.VA) >= uint64(base)+testFootprint {
				t.Fatalf("%s ref %d out of footprint: %v", name, i, ref.VA)
			}
		}
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	a := buildAll(t, 7)
	b := buildAll(t, 7)
	for name := range a {
		for i := 0; i < 10000; i++ {
			if a[name].Next() != b[name].Next() {
				t.Fatalf("%s diverged at ref %d", name, i)
			}
		}
	}
}

func TestStreamsDifferAcrossSeeds(t *testing.T) {
	a := buildAll(t, 1)
	b := buildAll(t, 2)
	// Deterministic-pattern workloads (cactus) are seed-independent;
	// check a random-heavy one.
	same := 0
	for i := 0; i < 1000; i++ {
		if a["gups"].Next() == b["gups"].Next() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("gups streams nearly identical across seeds (%d/1000)", same)
	}
}

func TestCatalogCoverage(t *testing.T) {
	specs := Catalog()
	if len(specs) < 10 {
		t.Fatalf("catalog has only %d workloads", len(specs))
	}
	classes := map[Class]int{}
	for _, s := range specs {
		classes[s.Class]++
		if s.BaseCPI <= 0 || s.RefsPerInstr <= 0 || s.RefsPerInstr > 1 {
			t.Errorf("%s has implausible model params: %+v", s.Name, s)
		}
		if s.Build == nil {
			t.Errorf("%s has no builder", s.Name)
		}
	}
	if classes[SpecParsec] < 4 || classes[BigMemory] < 4 {
		t.Errorf("class balance: %v", classes)
	}
	if SpecParsec.String() == "" || BigMemory.String() == "" {
		t.Error("class names empty")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("mcf")
	if err != nil || s.Name != "mcf" {
		t.Errorf("ByName(mcf) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != len(Catalog()) {
		t.Error("Names length mismatch")
	}
}

// TestLocalityClasses verifies the defining locality property of key
// stream archetypes: distinct pages touched in a fixed window must be
// low for sequential, high for uniform random, medium for Zipf.
func TestLocalityClasses(t *testing.T) {
	distinctPages := func(s Stream, n int) int {
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			seen[s.Next().VA.VPN4K()] = true
		}
		return len(seen)
	}
	const window = 20000
	rng := simrand.New(3)
	r := region{0x10000000000, testFootprint}
	seq := distinctPages(newSeq(r, 64, false, 0), window)
	uni := distinctPages(newUniform(r, rng.Split(), 0, 0), window)
	zip := distinctPages(newZipf(r, rng.Split(), 0.99, 0, 0), window)
	if seq >= zip || zip >= uni {
		t.Errorf("locality ordering violated: seq=%d zipf=%d uniform=%d", seq, uni, zip)
	}
	// GUPS over 64MB: nearly every access is a distinct page.
	if uni < window/2 {
		t.Errorf("uniform stream touched only %d distinct pages", uni)
	}
	// Sequential with 64B stride: one new page per 64 refs.
	if seq > window/32 {
		t.Errorf("sequential stream touched %d distinct pages", seq)
	}
}

func TestChaseVisitsFullCycle(t *testing.T) {
	rng := simrand.New(5)
	r := region{0, 1 << 20} // 16K nodes
	c := newChase(r, rng, 0)
	seen := make(map[addr.V]bool)
	nodes := int(r.size / chaseNodeBytes)
	for i := 0; i < nodes; i++ {
		seen[c.Next().VA] = true
	}
	// A Sattolo cycle visits every node exactly once per period.
	if len(seen) != nodes {
		t.Errorf("chase visited %d/%d nodes in one period", len(seen), nodes)
	}
	// Second period repeats.
	first := c.Next()
	if !seen[first.VA] {
		t.Error("second period diverged")
	}
}

func TestWritesFlow(t *testing.T) {
	for _, name := range []string{"gups", "memcached", "canneal", "xz"} {
		spec, _ := ByName(name)
		s := spec.Build(0, testFootprint, simrand.New(11))
		writes := 0
		for i := 0; i < 10000; i++ {
			if s.Next().Write {
				writes++
			}
		}
		if writes == 0 {
			t.Errorf("%s issued no writes", name)
		}
	}
}

func TestPCsAreStableAndDistinct(t *testing.T) {
	if pc("mcf", 0) != pc("mcf", 0) {
		t.Error("pc not stable")
	}
	if pc("mcf", 0) == pc("mcf", 1) || pc("mcf", 0) == pc("gups", 0) {
		t.Error("pc collisions")
	}
	// Streams attach PCs.
	spec, _ := ByName("mcf")
	s := spec.Build(0, testFootprint, simrand.New(1))
	pcs := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		pcs[s.Next().PC] = true
	}
	if len(pcs) < 2 {
		t.Errorf("mcf uses %d distinct PCs", len(pcs))
	}
}

func TestMixWeights(t *testing.T) {
	rng := simrand.New(13)
	a := newSeq(region{0, 1 << 20}, 64, false, 111)
	b := newSeq(region{1 << 30, 1 << 20}, 64, false, 222)
	m := newMix(rng, weighted{a, 0.9}, weighted{b, 0.1})
	fromA := 0
	for i := 0; i < 10000; i++ {
		if m.Next().PC == 111 {
			fromA++
		}
	}
	if fromA < 8500 || fromA > 9500 {
		t.Errorf("mix delivered %d/10000 from the 0.9 component", fromA)
	}
}
