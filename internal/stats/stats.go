// Package stats provides the measurement plumbing for the simulator:
// counters, histograms, and the run-length / contiguity statistics that
// Figures 9-13 of the paper are built from.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple named event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, or 0 when b is zero.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// Histogram counts occurrences of integer-valued observations. It is used
// for run-length distributions where the domain is small and dense enough
// that exact counting beats bucketing.
type Histogram struct {
	counts map[uint64]uint64
	total  uint64
	sum    float64
	// weighted accumulates Σ value*count for weighted means.
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]uint64)}
}

// Observe records one occurrence of v.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records n occurrences of v.
func (h *Histogram) ObserveN(v, n uint64) {
	h.counts[v] += n
	h.total += n
	h.sum += float64(v) * float64(n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Each calls fn for every distinct observed value in ascending order with
// its occurrence count (exporters re-bucket exact counts this way).
func (h *Histogram) Each(fn func(v, n uint64)) {
	for _, v := range h.sortedValues() {
		fn(v, h.counts[v])
	}
}

// CountOf returns the number of observations equal to v.
func (h *Histogram) CountOf(v uint64) uint64 { return h.counts[v] }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 {
	var m uint64
	for v := range h.counts {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the smallest observed value v such that at least
// fraction q of the observations are <= v. q is clamped to [0, 1] and an
// empty histogram reports 0, so exporter and summary call sites never
// have to pre-validate.
func (h *Histogram) Quantile(q float64) uint64 {
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if h.total == 0 {
		return 0
	}
	values := h.sortedValues()
	need := uint64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for _, v := range values {
		cum += h.counts[v]
		if cum >= need {
			return v
		}
	}
	return values[len(values)-1]
}

func (h *Histogram) sortedValues() []uint64 {
	values := make([]uint64, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	return values
}

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value uint64  // observation value (e.g. run length)
	Frac  float64 // fraction of observations <= Value
}

// CDF returns the empirical CDF of the histogram, one point per distinct
// value, in increasing value order. Figures 12-13 plot exactly this.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	values := h.sortedValues()
	points := make([]CDFPoint, 0, len(values))
	var cum uint64
	for _, v := range values {
		cum += h.counts[v]
		points = append(points, CDFPoint{Value: v, Frac: float64(cum) / float64(h.total)})
	}
	return points
}

// CDFAt evaluates the empirical CDF at value x.
func (h *Histogram) CDFAt(x uint64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64
	for v, c := range h.counts {
		if v <= x {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// RunLengths computes the paper's average-contiguity metric (Sec 7.1) from
// a histogram of run lengths, where Observe(L) is called once per run of
// length L. The metric weights each translation by the length of the run
// it belongs to: for runs (1, 1, 2) the average is (1 + 1 + 2×2)/4 = 1.5.
func (h *Histogram) AverageContiguity() float64 {
	var weighted float64
	var translations uint64
	// Accumulate in sorted-value order: float addition is not associative,
	// so map-iteration order would make the last bits of the result vary
	// run to run — enough to break the bit-for-bit table determinism the
	// parallel experiment engine guarantees.
	for _, l := range h.sortedValues() {
		runs := h.counts[l]
		weighted += float64(l) * float64(l) * float64(runs)
		translations += l * runs
	}
	if translations == 0 {
		return 0
	}
	return weighted / float64(translations)
}

// TranslationWeightedCDF returns the CDF over translations (not runs):
// each run of length L contributes L observations of value L. This is the
// distribution the paper's contiguity CDFs (Figures 12-13) describe —
// "what fraction of superpage translations sit in runs of length <= x".
func (h *Histogram) TranslationWeightedCDF() []CDFPoint {
	w := NewHistogram()
	for l, runs := range h.counts {
		w.ObserveN(l, l*runs)
	}
	return w.CDF()
}

// Summary renders a short human-readable digest of the distribution.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p90=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max())
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of the positive values in xs (0 when
// none are positive). Speedup aggregation across workloads conventionally
// uses this; non-positive entries — a zeroed cell from a failed run, say —
// are skipped rather than poisoning the whole aggregate, since log(x) is
// undefined for them.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Percentile returns the value at fraction q of the sorted sample set
// using nearest-rank on a copy of xs. q is clamped to [0, 1]; an empty
// slice reports 0 and a single sample reports that sample for every q.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Table is a simple printable result table used by the experiment harness.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v, floats with
// two decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
