package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("Value = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d", c.Value())
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 || Percent(1, 0) != 0 {
		t.Error("division by zero should yield 0")
	}
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Percent(1, 4); got != 25 {
		t.Errorf("Percent = %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Summary() != "empty" {
		t.Errorf("empty summary = %q", h.Summary())
	}
	h.Observe(1)
	h.Observe(1)
	h.ObserveN(4, 3)
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.CountOf(4) != 3 {
		t.Errorf("CountOf(4) = %d", h.CountOf(4))
	}
	if got, want := h.Mean(), (1.0+1+4+4+4)/5; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if h.Max() != 4 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %d", got)
	}
	if got := h.Quantile(0.9); got != 90 {
		t.Errorf("p90 = %d", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	single := NewHistogram()
	single.Observe(7)
	hundred := NewHistogram()
	for i := uint64(1); i <= 100; i++ {
		hundred.Observe(i)
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want uint64
	}{
		{"empty any q", NewHistogram(), 0.5, 0},
		{"empty q over 1", NewHistogram(), 2, 0},
		{"single p0", single, 0, 7},
		{"single p50", single, 0.5, 7},
		{"single p100", single, 1, 7},
		{"clamp above 1", hundred, 1.5, 100},
		{"clamp below 0", hundred, -0.5, 1},
		{"clamp NaN", hundred, math.NaN(), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.h.Quantile(c.q); got != c.want {
				t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
			}
		})
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(uint64(v) % 32)
		}
		cdf := h.CDF()
		prevV, prevF := uint64(0), 0.0
		for i, p := range cdf {
			if i > 0 && (p.Value <= prevV || p.Frac < prevF) {
				return false
			}
			prevV, prevF = p.Value, p.Frac
		}
		return len(cdf) == 0 || math.Abs(cdf[len(cdf)-1].Frac-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(1, 2)
	h.ObserveN(10, 2)
	if got := h.CDFAt(5); got != 0.5 {
		t.Errorf("CDFAt(5) = %v", got)
	}
	if got := h.CDFAt(10); got != 1 {
		t.Errorf("CDFAt(10) = %v", got)
	}
	if got := h.CDFAt(0); got != 0 {
		t.Errorf("CDFAt(0) = %v", got)
	}
}

func TestAverageContiguityPaperExample(t *testing.T) {
	// Sec 7.1: runs (1, 1, 2) over 4 translations → (1+1+2×2)/4 = 1.5.
	h := NewHistogram()
	h.Observe(1)
	h.Observe(1)
	h.Observe(2)
	if got := h.AverageContiguity(); got != 1.5 {
		t.Errorf("AverageContiguity = %v, want 1.5", got)
	}
}

func TestAverageContiguityAllSingletons(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(1, 100)
	if got := h.AverageContiguity(); got != 1 {
		t.Errorf("AverageContiguity = %v, want 1", got)
	}
}

func TestAverageContiguityEmpty(t *testing.T) {
	if got := NewHistogram().AverageContiguity(); got != 0 {
		t.Errorf("empty AverageContiguity = %v", got)
	}
}

func TestTranslationWeightedCDF(t *testing.T) {
	h := NewHistogram()
	h.Observe(1) // 1 translation in a run of 1
	h.Observe(3) // 3 translations in a run of 3
	cdf := h.TranslationWeightedCDF()
	if len(cdf) != 2 {
		t.Fatalf("cdf has %d points", len(cdf))
	}
	if cdf[0].Value != 1 || math.Abs(cdf[0].Frac-0.25) > 1e-12 {
		t.Errorf("point 0 = %+v, want {1 0.25}", cdf[0])
	}
	if cdf[1].Value != 3 || math.Abs(cdf[1].Frac-1) > 1e-12 {
		t.Errorf("point 1 = %+v", cdf[1])
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
}

func TestGeoMeanSkipsNonPositive(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"zero skipped", []float64{1, 0, 4}, 2},
		{"negative skipped", []float64{-3, 1, 4}, 2},
		{"NaN skipped", []float64{math.NaN(), 1, 4}, 2},
		{"all non-positive", []float64{0, -1}, 0},
		{"single", []float64{9}, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := GeoMean(c.xs); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("GeoMean(%v) = %v, want %v", c.xs, got, c.want)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p0", []float64{3}, 0, 3},
		{"single p100", []float64{3}, 1, 3},
		{"median of odd", []float64{3, 1, 2}, 0.5, 2},
		{"p100 unsorted input", []float64{5, 9, 1}, 1, 9},
		{"clamp above 1", []float64{1, 2}, 7, 2},
		{"clamp below 0", []float64{1, 2}, -7, 1},
		{"clamp NaN", []float64{1, 2}, math.NaN(), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(c.xs, c.q); got != c.want {
				t.Errorf("Percentile(%v, %v) = %v, want %v", c.xs, c.q, got, c.want)
			}
		})
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 1.234)
	tb.AddRow("b", 42)
	s := tb.String()
	for _, want := range []string{"demo", "alpha", "1.23", "42", "name", "value"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "alpha,1.23") {
		t.Errorf("csv missing row: %q", csv)
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	h.ObserveN(2, 10)
	s := h.Summary()
	if !strings.Contains(s, "n=10") || !strings.Contains(s, "max=2") {
		t.Errorf("summary = %q", s)
	}
}
