package physmem

import (
	"testing"
	"testing/quick"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

func TestNewBuddyRejectsBadSizes(t *testing.T) {
	for _, sz := range []uint64{0, 100, addr.Size4K + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuddy(%d) did not panic", sz)
				}
			}()
			NewBuddy(sz)
		}()
	}
}

func TestAllocLowestFirst(t *testing.T) {
	b := NewBuddy(16 * addr.Size4K)
	for i := uint64(0); i < 16; i++ {
		f, ok := b.AllocOrder(0)
		if !ok || f != i {
			t.Fatalf("alloc %d: got (%d, %v), want (%d, true)", i, f, ok, i)
		}
	}
	if _, ok := b.AllocOrder(0); ok {
		t.Fatal("allocation succeeded on full memory")
	}
	if b.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d, want 0", b.FreeFrames())
	}
}

func TestAllocAlignment(t *testing.T) {
	b := NewBuddy(1 << 30) // 1GB
	for order := uint(0); order <= 10; order++ {
		f, ok := b.AllocOrder(order)
		if !ok {
			t.Fatalf("order %d alloc failed", order)
		}
		if f%(1<<order) != 0 {
			t.Fatalf("order %d block at frame %d is misaligned", order, f)
		}
	}
}

func TestSequentialSuperpagesAreContiguous(t *testing.T) {
	// The property MIX TLBs rely on: a defragmented allocator serves
	// ascending adjacent 2MB blocks.
	b := NewBuddy(1 << 30)
	var prev addr.P
	for i := 0; i < 8; i++ {
		pa, ok := b.AllocPage(addr.Page2M)
		if !ok {
			t.Fatal("2MB alloc failed")
		}
		if i > 0 && pa != prev+addr.Size2M {
			t.Fatalf("2MB page %d at %v, want %v", i, pa, prev+addr.Size2M)
		}
		prev = pa
	}
}

func TestFreeAndCoalesce(t *testing.T) {
	b := NewBuddy(1 << 22) // 4MB = 1024 frames
	frames := make([]uint64, 0, 1024)
	for {
		f, ok := b.AllocOrder(0)
		if !ok {
			break
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		b.Free(f, 0)
	}
	// After freeing everything, buddies must have merged back to one
	// maximal block, allowing a full-size allocation.
	if o, ok := b.LargestFreeOrder(); !ok || o != 10 {
		t.Fatalf("LargestFreeOrder = (%d, %v), want (10, true)", o, ok)
	}
	f, ok := b.AllocOrder(10)
	if !ok || f != 0 {
		t.Fatalf("full-block alloc = (%d, %v)", f, ok)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	b := NewBuddy(1 << 20)
	f, _ := b.AllocOrder(3)
	b.Free(f, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free(f, 3)
}

func TestFreeBadArgsPanics(t *testing.T) {
	b := NewBuddy(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned free did not panic")
		}
	}()
	b.Free(1, 3) // not aligned to order 3
}

func TestAllocFrameAt(t *testing.T) {
	b := NewBuddy(64 * addr.Size4K)
	if !b.AllocFrameAt(17) {
		t.Fatal("AllocFrameAt(17) failed on empty allocator")
	}
	if b.AllocFrameAt(17) {
		t.Fatal("AllocFrameAt(17) succeeded twice")
	}
	if b.FrameFree(17) {
		t.Fatal("frame 17 still reported free")
	}
	if !b.FrameFree(16) || !b.FrameFree(18) {
		t.Fatal("neighbours of allocated frame not free")
	}
	if b.FreeFrames() != 63 {
		t.Fatalf("FreeFrames = %d, want 63", b.FreeFrames())
	}
	b.Free(17, 0)
	if o, ok := b.LargestFreeOrder(); !ok || o != 6 {
		t.Fatalf("after refill LargestFreeOrder = (%d, %v), want (6, true)", o, ok)
	}
}

func TestAllocFrameAtBlocksSuperpage(t *testing.T) {
	// One random small allocation inside every 2MB region should make 2MB
	// allocations impossible — the essence of fragmentation.
	b := NewBuddy(8 * addr.Size2M)
	per2M := uint64(addr.FramesPer2M)
	for i := uint64(0); i < 8; i++ {
		if !b.AllocFrameAt(i*per2M + 100) {
			t.Fatalf("hole %d failed", i)
		}
	}
	if _, ok := b.AllocPage(addr.Page2M); ok {
		t.Fatal("2MB allocation succeeded despite holes in every block")
	}
	if _, ok := b.AllocPage(addr.Page4K); !ok {
		t.Fatal("4KB allocation failed with plenty of free memory")
	}
}

func TestOutOfRangeFrames(t *testing.T) {
	b := NewBuddy(10 * addr.Size4K) // padded to 16 leaves; 10 usable
	if b.AllocFrameAt(10) || b.AllocFrameAt(999) {
		t.Fatal("allocated a padding/out-of-range frame")
	}
	if b.FrameFree(10) || b.FrameFree(1<<40) {
		t.Fatal("padding frame reported free")
	}
	// All 10 usable frames allocatable despite padding.
	for i := 0; i < 10; i++ {
		if _, ok := b.AllocOrder(0); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := b.AllocOrder(0); ok {
		t.Fatal("11th allocation out of 10 frames succeeded")
	}
}

func TestAllocRandomFrame(t *testing.T) {
	b := NewBuddy(256 * addr.Size4K)
	rng := simrand.New(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 256; i++ {
		f, ok := b.AllocRandomFrame(rng)
		if !ok {
			t.Fatalf("random alloc %d failed", i)
		}
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		seen[f] = true
	}
	if _, ok := b.AllocRandomFrame(rng); ok {
		t.Fatal("random alloc succeeded on full memory")
	}
}

func TestFreeBlocksOfOrder(t *testing.T) {
	b := NewBuddy(4 * addr.Size2M)
	if got := b.FreeBlocksOfOrder(9); got != 0 {
		// Fully free memory coalesces above order 9 (4 x 2MB = order 11).
		t.Fatalf("FreeBlocksOfOrder(9) = %d on pristine memory, want 0", got)
	}
	if got := b.FreeBlocksOfOrder(11); got != 1 {
		t.Fatalf("FreeBlocksOfOrder(11) = %d, want 1", got)
	}
	b.AllocFrameAt(0) // split the big block
	if got := b.FreeBlocksOfOrder(10); got != 1 {
		t.Fatalf("after split FreeBlocksOfOrder(10) = %d, want 1", got)
	}
}

// TestBuddyInvariants drives a random mix of operations and cross-checks
// the allocator against a naive reference bitmap.
func TestBuddyInvariants(t *testing.T) {
	const frames = 512
	type allocation struct {
		frame uint64
		order uint
	}
	f := func(seed uint64, ops []uint16) bool {
		b := NewBuddy(frames * addr.Size4K)
		rng := simrand.New(seed)
		ref := make([]bool, frames) // true = allocated
		var live []allocation
		refCount := func() uint64 {
			var n uint64
			for _, a := range ref {
				if !a {
					n++
				}
			}
			return n
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // allocate a block of random order
				order := uint(op/3) % 6
				frame, ok := b.AllocOrder(order)
				if ok {
					for i := uint64(0); i < 1<<order; i++ {
						if ref[frame+i] {
							t.Logf("overlap at frame %d", frame+i)
							return false
						}
						ref[frame+i] = true
					}
					live = append(live, allocation{frame, order})
				}
			case 1: // free a random live block
				if len(live) > 0 {
					i := rng.Intn(len(live))
					a := live[i]
					b.Free(a.frame, a.order)
					for j := uint64(0); j < 1<<a.order; j++ {
						ref[a.frame+j] = false
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			case 2: // pinpoint allocation
				target := uint64(op) % frames
				got := b.AllocFrameAt(target)
				if got != !ref[target] {
					t.Logf("AllocFrameAt(%d) = %v, ref says allocated=%v", target, got, ref[target])
					return false
				}
				if got {
					ref[target] = true
					live = append(live, allocation{target, 0})
				}
			}
			if b.FreeFrames() != refCount() {
				t.Logf("free count mismatch: buddy=%d ref=%d", b.FreeFrames(), refCount())
				return false
			}
		}
		// Spot-check FrameFree against the reference.
		for i := uint64(0); i < frames; i++ {
			if b.FrameFree(i) == ref[i] {
				t.Logf("FrameFree(%d) = %v, ref allocated=%v", i, b.FrameFree(i), ref[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMemhogFragmentsSuperpages(t *testing.T) {
	b := NewBuddy(64 * addr.Size2M)
	hog := NewMemhog(b, simrand.New(7))
	hog.ScatterFrac = 0.3      // hostile setting: many chunks land randomly
	hog.ScatterClusterBias = 0 // uniformly, not clustered
	hog.Run(0.4)
	if hog.Held() != uint64(0.4*float64(b.TotalFrames())) {
		t.Fatalf("Held = %d", hog.Held())
	}
	// Chunky 40% fragmentation destroys many, but not all, 2MB blocks:
	// some direct 2MB allocations still succeed, far fewer than the 38
	// that free space alone would suggest.
	got := 0
	for {
		if _, ok := b.AllocPage(addr.Page2M); !ok {
			break
		}
		got++
	}
	if got == 0 {
		t.Error("no 2MB block survived chunky fragmentation (too destructive)")
	}
	if got >= 38 {
		t.Errorf("%d 2MB blocks survived; fragmentation had no effect", got)
	}
	// Small pages still allocate.
	if _, ok := b.AllocPage(addr.Page4K); !ok {
		t.Fatal("4KB allocation failed")
	}
	hog.Release()
	if hog.Held() != 0 {
		t.Fatal("Release left held frames")
	}
}

func TestMemhogOwnsAndCompact(t *testing.T) {
	b := NewBuddy(32 * addr.Size2M)
	hog := NewMemhog(b, simrand.New(5))
	hog.UnmovableFrac = 0 // everything migratable
	hog.ScatterFrac = 1   // maximal scattering: direct allocation fails
	hog.ScatterClusterBias = 0
	hog.CompactBudget = 1 << 20 // exhaustive scan for the test
	hog.MigrateFailProb = 0
	hog.Run(0.6)
	// Drain direct 2MB allocations.
	for {
		if _, ok := b.AllocPage(addr.Page2M); !ok {
			break
		}
	}
	// Compaction must still assemble 2MB blocks by migrating hog frames.
	frame, ok := hog.CompactFor(9)
	if !ok {
		t.Fatal("compaction failed with fully movable holdings")
	}
	if frame%512 != 0 {
		t.Errorf("compacted block at frame %d is misaligned", frame)
	}
	if hog.Migrated == 0 {
		t.Error("compaction migrated nothing")
	}
	// The block is allocated to the caller: its frames are not free and
	// not hog-owned.
	for f := frame; f < frame+512; f++ {
		if b.FrameFree(f) || hog.Owns(f) {
			t.Fatalf("frame %d in compacted block is free=%v owned=%v",
				f, b.FrameFree(f), hog.Owns(f))
		}
	}
	// Free-frame accounting stayed exact: held + compacted block +
	// drained blocks + free == total.
	if b.FreeFrames()+hog.Held() > b.TotalFrames() {
		t.Error("accounting overflow")
	}
}

func TestMemhogUnmovableDefeatsCompaction(t *testing.T) {
	b := NewBuddy(16 * addr.Size2M)
	hog := NewMemhog(b, simrand.New(13))
	hog.UnmovableFrac = 1 // everything pinned
	hog.MaxChunkOrder = 4 // small chunks scatter widely
	hog.Run(0.5)
	for {
		if _, ok := b.AllocPage(addr.Page2M); !ok {
			break
		}
	}
	if _, ok := hog.CompactFor(9); ok {
		t.Error("compaction succeeded despite fully pinned holdings")
	}
}

func TestMemhogShrink(t *testing.T) {
	b := NewBuddy(16 * addr.Size2M)
	hog := NewMemhog(b, simrand.New(9))
	hog.Run(0.5)
	half := hog.Held()
	hog.Run(0.25)
	if hog.Held() >= half {
		t.Fatalf("shrink did not release frames: %d -> %d", half, hog.Held())
	}
	want := uint64(0.25 * float64(b.TotalFrames()))
	if hog.Held() != want {
		t.Fatalf("Held = %d, want %d", hog.Held(), want)
	}
}

func TestMemhogBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMemhog(NewBuddy(1<<20), simrand.New(0)).Run(1.5)
}

func TestMemhogFullMemory(t *testing.T) {
	b := NewBuddy(32 * addr.Size4K)
	hog := NewMemhog(b, simrand.New(3))
	hog.Run(1.0)
	if b.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d after memhog(100%%)", b.FreeFrames())
	}
}
