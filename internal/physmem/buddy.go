// Package physmem models physical memory as a buddy allocator plus the
// memhog-style fragmenter the paper uses to control superpage availability
// (Sec 7.1). Superpage frequency *and* superpage contiguity in the higher
// layers emerge from this allocator's behaviour, exactly as they do from a
// real OS buddy allocator: when memory is defragmented, successive
// superpage allocations are served from ascending adjacent blocks; when
// small random allocations riddle memory, large blocks become scarce.
package physmem

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// MaxOrder is the largest supported allocation order: order 18 blocks are
// 2^18 4KB frames = 1GB, the largest x86-64 page size.
const MaxOrder = 18

// Buddy is a binary buddy allocator over 4KB physical frames.
//
// It is implemented as a complete binary tree where each node covers an
// aligned power-of-two run of frames and records the largest free aligned
// block beneath it, encoded as order+1 (0 means nothing free). Allocation
// descends leftmost-first, handing out the lowest free block of the
// requested order — the behaviour that makes consecutive superpage
// allocations physically contiguous when memory is defragmented. Freeing
// merges buddies automatically as the fully-free property propagates up.
//
// Invariant: a node that is neither fully free (encoding order+1) nor
// empty (encoding 0) always has accurate children. Fully free and empty
// nodes may have stale descendants, so traversals always descend from the
// root and split fully free nodes on the way down.
type Buddy struct {
	frames uint64  // usable frames
	leaves uint64  // padded power-of-two leaf count
	height uint    // log2(leaves)
	tree   []uint8 // 1-indexed; tree[1] is the root
	free   uint64  // free frame count

	// faultHook, when set, may veto an allocation (fault injection: a
	// transient OOM). A vetoed allocation reports failure without
	// touching allocator state.
	faultHook func(order uint) bool
}

// SetFaultHook installs (or, with nil, removes) a transient-failure hook
// consulted at the top of every allocation.
func (b *Buddy) SetFaultHook(f func(order uint) bool) { b.faultHook = f }

// NewBuddy returns an allocator managing totalBytes of physical memory.
// totalBytes must be a positive multiple of 4KB.
func NewBuddy(totalBytes uint64) *Buddy {
	if totalBytes == 0 || totalBytes%addr.Size4K != 0 {
		panic("physmem: total size must be a positive multiple of 4KB")
	}
	frames := totalBytes / addr.Size4K
	leaves := uint64(1)
	var height uint
	for leaves < frames {
		leaves <<= 1
		height++
	}
	b := &Buddy{
		frames: frames,
		leaves: leaves,
		height: height,
		tree:   make([]uint8, 2*leaves),
		free:   frames,
	}
	// Leaves: usable frames are free at order 0 (encoded 1), padding is
	// permanently allocated (encoded 0).
	for i := uint64(0); i < frames; i++ {
		b.tree[leaves+i] = 1
	}
	// Interior nodes, bottom-up.
	for n := leaves - 1; n >= 1; n-- {
		b.tree[n] = merge(b.tree[2*n], b.tree[2*n+1], b.nodeOrder(n))
	}
	return b
}

// merge computes a parent's encoding from its children: if both children
// are fully free blocks of the child order, the parent is a fully free
// block one order larger (buddy coalescing); otherwise it exposes the
// larger of the children's best blocks.
func merge(l, r uint8, parentOrder uint) uint8 {
	childFull := uint8(parentOrder) // child order + 1
	if l == childFull && r == childFull {
		return childFull + 1
	}
	if l > r {
		return l
	}
	return r
}

// nodeOrder returns the order of the block covered by tree node n.
func (b *Buddy) nodeOrder(n uint64) uint {
	depth := uint(0)
	for m := n; m > 1; m >>= 1 {
		depth++
	}
	return b.height - depth
}

// TotalFrames returns the number of usable 4KB frames.
func (b *Buddy) TotalFrames() uint64 { return b.frames }

// TotalBytes returns the managed memory size in bytes.
func (b *Buddy) TotalBytes() uint64 { return b.frames * addr.Size4K }

// FreeFrames returns the number of currently free 4KB frames.
func (b *Buddy) FreeFrames() uint64 { return b.free }

// LargestFreeOrder returns the order of the largest allocatable block, and
// false if no memory is free.
func (b *Buddy) LargestFreeOrder() (uint, bool) {
	if b.tree[1] == 0 {
		return 0, false
	}
	return uint(b.tree[1] - 1), true
}

// splitIfFull refreshes the children of a fully free node so a traversal
// may descend through it. n must be an interior node of order no.
func (b *Buddy) splitIfFull(n uint64, no uint) {
	if b.tree[n] == uint8(no+1) {
		b.tree[2*n] = uint8(no) // child order no-1, encoding no
		b.tree[2*n+1] = uint8(no)
	}
}

// AllocOrder allocates the lowest-addressed free block of 2^order frames,
// returning its first frame number. ok is false if no such block exists.
func (b *Buddy) AllocOrder(order uint) (frame uint64, ok bool) {
	if order > MaxOrder || order > b.height {
		return 0, false
	}
	if b.faultHook != nil && b.faultHook(order) {
		return 0, false
	}
	want := uint8(order + 1)
	if b.tree[1] < want {
		return 0, false
	}
	n := uint64(1)
	for no := b.height; no > order; no-- {
		b.splitIfFull(n, no)
		n <<= 1
		if b.tree[n] < want {
			n++ // left child cannot satisfy; the right one must
		}
	}
	frame = (n - (b.leaves >> order)) << order
	b.tree[n] = 0
	b.propagate(n)
	b.free -= 1 << order
	return frame, true
}

// propagate recomputes encodings from n's parent up to the root.
func (b *Buddy) propagate(n uint64) {
	for n >>= 1; n >= 1; n >>= 1 {
		b.tree[n] = merge(b.tree[2*n], b.tree[2*n+1], b.nodeOrder(n))
	}
}

// AllocPage allocates a naturally aligned physical page of size s and
// returns its base address.
func (b *Buddy) AllocPage(s addr.PageSize) (addr.P, bool) {
	order := uint(s.Shift() - addr.Shift4K)
	frame, ok := b.AllocOrder(order)
	if !ok {
		return 0, false
	}
	return addr.P(frame << addr.Shift4K), true
}

// OrderOf translates a page-size class into a buddy order under a bound
// address space's ladder — the descriptor-driven counterpart of the
// s.Shift()-Shift4K arithmetic AllocPage hardcodes. Identical results for
// any descriptor with the default 4KB/2MB/1GB ladder.
func OrderOf(sp addr.Space, s addr.PageSize) uint {
	return sp.Shift(s) - sp.Shift(addr.Page4K)
}

// AllocPageIn is AllocPage with the order keyed off a bound ladder.
func (b *Buddy) AllocPageIn(sp addr.Space, s addr.PageSize) (addr.P, bool) {
	frame, ok := b.AllocOrder(OrderOf(sp, s))
	if !ok {
		return 0, false
	}
	return addr.P(frame << addr.Shift4K), true
}

// FreePageIn is FreePage with the order keyed off a bound ladder.
func (b *Buddy) FreePageIn(sp addr.Space, pa addr.P, s addr.PageSize) {
	b.Free(pa.PFN4K(), OrderOf(sp, s))
}

// Free releases the block of 2^order frames starting at frame. The pair
// must match a previous allocation exactly; freeing at a different
// granularity than the allocation is a caller bug.
func (b *Buddy) Free(frame uint64, order uint) {
	if order > b.height || frame%(1<<order) != 0 || frame+(1<<order) > b.frames {
		panic(fmt.Sprintf("physmem: bad Free(frame=%d, order=%d)", frame, order))
	}
	n := (b.leaves >> order) + (frame >> order)
	if b.tree[n] != 0 {
		panic(fmt.Sprintf("physmem: double free of frame %d order %d", frame, order))
	}
	b.tree[n] = uint8(order + 1)
	b.propagate(n)
	b.free += 1 << order
}

// FreePage releases a page previously returned by AllocPage.
func (b *Buddy) FreePage(pa addr.P, s addr.PageSize) {
	b.Free(pa.PFN4K(), uint(s.Shift()-addr.Shift4K))
}

// FrameFree reports whether the single frame is currently free.
func (b *Buddy) FrameFree(frame uint64) bool {
	if frame >= b.frames {
		return false
	}
	n := uint64(1)
	for no := b.height; ; no-- {
		enc := b.tree[n]
		if enc == 0 {
			return false // nothing free below
		}
		if enc == uint8(no+1) {
			return true // fully free block covering the frame
		}
		// Partial: children are accurate; descend toward the frame.
		n = 2*n + (frame>>(no-1))&1
	}
}

// AllocFrameAt allocates the specific single frame if it is free,
// splitting covering blocks as needed. It reports whether the frame was
// allocated. This is the primitive memhog uses to poke random holes.
func (b *Buddy) AllocFrameAt(frame uint64) bool {
	if frame >= b.frames {
		return false
	}
	n := uint64(1)
	no := b.height
	for {
		enc := b.tree[n]
		if enc == 0 {
			return false
		}
		if enc == uint8(no+1) {
			break // fully free block covering the frame; split below
		}
		n = 2*n + (frame>>(no-1))&1
		no--
	}
	// Split from (n, no) down to the leaf: consume the path node, freeing
	// the sibling at each level (the classic buddy split).
	b.tree[n] = 0
	for no > 0 {
		no--
		left := 2 * n
		if (frame>>no)&1 == 0 {
			b.tree[left+1] = uint8(no + 1)
			n = left
		} else {
			b.tree[left] = uint8(no + 1)
			n = left + 1
		}
		b.tree[n] = 0
	}
	b.propagate(n)
	b.free--
	return true
}

// AllocBlockAt allocates the specific aligned block of 2^order frames
// starting at frame, if it is entirely free. It reports success. This is
// the primitive compaction uses after migrating movable pages out of a
// candidate region.
func (b *Buddy) AllocBlockAt(frame uint64, order uint) bool {
	if order > b.height || frame%(1<<order) != 0 || frame+(1<<order) > b.frames {
		return false
	}
	n := uint64(1)
	no := b.height
	for no > order {
		enc := b.tree[n]
		if enc == 0 {
			return false
		}
		if enc == uint8(no+1) {
			b.splitIfFull(n, no)
		}
		n = 2*n + (frame>>(no-1))&1
		no--
	}
	if b.tree[n] != uint8(order+1) {
		return false // block not fully free
	}
	b.tree[n] = 0
	b.propagate(n)
	b.free -= 1 << order
	return true
}

// AllocRandomFrame allocates a uniformly random free frame, returning its
// number. ok is false when memory is exhausted.
func (b *Buddy) AllocRandomFrame(rng *simrand.Source) (uint64, bool) {
	if b.free == 0 {
		return 0, false
	}
	// Rejection sampling over the frame space is cheap while free memory
	// is a non-negligible fraction; fall back to a randomized tree
	// descent when nearly full.
	for try := 0; try < 64; try++ {
		f := rng.Uint64n(b.frames)
		if b.AllocFrameAt(f) {
			return f, true
		}
	}
	n := uint64(1)
	for no := b.height; no > 0; no-- {
		b.splitIfFull(n, no)
		l, r := 2*n, 2*n+1
		switch {
		case b.tree[l] == 0:
			n = r
		case b.tree[r] == 0:
			n = l
		default:
			if rng.Bool(0.5) {
				n = l
			} else {
				n = r
			}
		}
	}
	f := n - b.leaves
	b.tree[n] = 0
	b.propagate(n)
	b.free--
	return f, true
}

// FreeBlocksOfOrder counts the maximal free blocks of exactly the given
// order (diagnostic; used by fragmentation reports).
func (b *Buddy) FreeBlocksOfOrder(order uint) uint64 {
	var count uint64
	var walk func(n uint64, no uint)
	walk = func(n uint64, no uint) {
		enc := b.tree[n]
		if enc == 0 {
			return
		}
		if enc == uint8(no+1) {
			if no == order {
				count++
			}
			return // a larger free block holds no maximal smaller ones
		}
		walk(2*n, no-1)
		walk(2*n+1, no-1)
	}
	walk(1, b.height)
	return count
}
