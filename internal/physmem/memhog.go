package physmem

import (
	"fmt"

	"mixtlb/internal/addr"
	"mixtlb/internal/simrand"
)

// Memhog reproduces the paper's fragmentation microbenchmark (Sec 7.1): a
// background process that allocates memory randomly across a fraction of
// system memory, destroying the large free blocks superpages need.
//
// Two aspects of real systems matter for reproducing Figure 9's regimes
// and are modeled here:
//
//   - Real allocations are chunky, not single random frames: memhog's
//     touches arrive as contiguous buffers. Holdings are therefore grabbed
//     as randomly-placed aligned chunks of mixed sizes (64KB-2MB class),
//     with single-frame fallback under pressure.
//   - Most such memory is *movable*: Linux compaction migrates it to
//     assemble free superpage blocks ("THS tries to defragment memory",
//     Sec 7.1). A configurable fraction of holdings is unmovable, standing
//     in for the kernel/pinned allocations that accompany memory pressure
//     and ultimately defeat compaction as load grows.
//
// CompactFor implements that migration: it hunts for an aligned region
// whose only occupants are movable hog frames, relocates them, and hands
// the caller the assembled block.
type Memhog struct {
	buddy *Buddy
	rng   *simrand.Source

	movable   bitset // frames held and migratable
	unmovable bitset // frames held and pinned
	held      uint64

	// UnmovableFrac is the probability a new chunk is pinned (default
	// 0.25, set before the first Run).
	UnmovableFrac float64
	// MaxChunkOrder bounds chunk sizes (default 9 = 2MB).
	MaxChunkOrder uint
	// UnmovableScatterFrac is the probability an unmovable chunk lands at
	// a random position, modeling the migratetype *fallback* pollution
	// that accumulates on long-loaded systems: under pressure, unmovable
	// allocations spill into movable pageblocks and permanently defeat
	// compaction there. Default 0 (clean segregation).
	UnmovableScatterFrac float64
	// ScatterFrac is the probability a movable chunk lands at a random
	// position instead of packing into the lowest free space (default
	// 0.01). Real memhog backs one huge buffer with packed buddy
	// allocations, so scattering is rare — and every scattered chunk is
	// one break in the free space's contiguity, which is what ultimately
	// limits superpage runs (Fig 11's contiguity comes directly from
	// this). Raise it to model hostile fragmentation.
	ScatterFrac float64

	// ScatterClusterBias is the probability a scattered chunk lands right
	// after the previous scattered chunk instead of at a fresh uniform
	// position (default 0.99). Real fragmentation is bursty — a load spike
	// trashes one area while others stay pristine — and clustering is
	// what preserves long superpage runs in the clean areas even when
	// many regions are polluted (Fig 11/12's coexistence of degraded
	// averages with long tails).
	ScatterClusterBias float64

	// CompactBudget bounds the candidate regions one compaction attempt
	// scans (default 8): the THP fault path makes one bounded effort and
	// defers, leaving the rest to background compaction.
	CompactBudget uint64
	// MigrateFailProb is the per-page probability that migration fails
	// (transiently pinned or un-isolatable pages, default 0.0005); any
	// failed page aborts that region's compaction, as in Linux.
	MigrateFailProb float64

	// Migrated counts frames moved by compaction (diagnostic).
	Migrated uint64

	// lastScatter is the frame after the most recent scattered chunk.
	lastScatter uint64

	// compactCursor remembers where the last successful compaction ended,
	// so successive compacted allocations come from ascending adjacent
	// regions — as Linux compaction's migration scanner produces, and the
	// property that gives compacted superpages their physical contiguity.
	compactCursor uint64
}

// NewMemhog returns a fragmenter over the given allocator.
func NewMemhog(b *Buddy, rng *simrand.Source) *Memhog {
	return &Memhog{
		buddy:              b,
		rng:                rng,
		movable:            newBitset(b.TotalFrames()),
		unmovable:          newBitset(b.TotalFrames()),
		UnmovableFrac:      0.25,
		MaxChunkOrder:      9,
		ScatterFrac:        0.01,
		ScatterClusterBias: 0.99,
		CompactBudget:      8,
		MigrateFailProb:    0.0005,
	}
}

// Held returns the number of frames the hog currently pins.
func (m *Memhog) Held() uint64 { return m.held }

// Owns reports whether the hog holds the frame (either class).
func (m *Memhog) Owns(frame uint64) bool {
	return m.movable.get(frame) || m.unmovable.get(frame)
}

// Run adjusts holdings to the given fraction of total physical memory.
// Growing allocates random aligned chunks (single frames under pressure);
// shrinking releases random held frames. Returns frames held afterwards.
func (m *Memhog) Run(fraction float64) uint64 {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("physmem: memhog fraction %v out of [0,1]", fraction))
	}
	target := uint64(fraction * float64(m.buddy.TotalFrames()))
	for m.held < target {
		if !m.grabChunk(target - m.held) {
			break // memory exhausted
		}
	}
	for m.held > target {
		m.releaseRandomFrame()
	}
	return m.held
}

// grabChunk allocates one chunk of frames (≤ budget), placed at a random
// aligned position. The chunk's movability class is drawn once.
func (m *Memhog) grabChunk(budget uint64) bool {
	set := &m.movable
	if m.rng.Float64() < m.UnmovableFrac {
		set = &m.unmovable
	}
	order := uint(m.rng.Intn(int(m.MaxChunkOrder) + 1))
	for order > 0 && uint64(1)<<order > budget {
		order--
	}
	total := m.buddy.TotalFrames()
	// Unmovable chunks never scatter: Linux's migratetype grouping steers
	// unmovable allocations into dedicated pageblocks precisely so the
	// rest of memory stays compactable. Only movable chunks land at
	// random addresses.
	scatter := m.ScatterFrac
	if set == &m.unmovable {
		scatter = m.UnmovableScatterFrac
	}
	if m.rng.Float64() < scatter {
		// Scattered chunk: usually clustered after the previous one
		// (bursty fragmentation), otherwise a fresh uniform position.
		size := uint64(1) << order
		var start uint64
		if m.rng.Float64() < m.ScatterClusterBias && m.lastScatter+size <= total {
			start = addr.AlignedUp(m.lastScatter, size)
		} else {
			start = m.rng.Uint64n(total) &^ (size - 1)
		}
		if start+size <= total && m.grabAt(set, start, size) {
			// Leave a strictly sub-superpage gap before the next
			// clustered chunk: the polluted zone ends up as alternating
			// held/free fragments — free memory that small pages can use
			// but superpages cannot, the hallmark of real fragmentation.
			// Gaps stay below half a chunk so no aligned 2MB block ever
			// survives inside a blob (superpages then come in bulk runs
			// from the clean areas, or not at all — the correlation the
			// paper observes in Sec 1).
			m.lastScatter = start + size + m.rng.Uint64n(size/2+1)
			return true
		}
		// Occupied spot: fall through to a packed grab.
	}
	// Packed chunk: the lowest free block of this (or a smaller) order,
	// as a buddy allocator would serve a buffer. Allocated frame-by-frame
	// so holdings stay uniformly order-0 (freeable and migratable
	// individually).
	for ; ; order-- {
		if start, ok := m.buddy.AllocOrder(order); ok {
			m.buddy.Free(start, order)
			if m.grabAt(set, start, uint64(1)<<order) {
				return true
			}
		}
		if order == 0 {
			break
		}
	}
	// Last resort under pressure: a single random free frame.
	f, ok := m.buddy.AllocRandomFrame(m.rng)
	if !ok {
		return false
	}
	set.set(f)
	m.held++
	return true
}

// grabAt claims [start, start+size) frame-by-frame, rolling back on any
// occupied frame. It reports success.
func (m *Memhog) grabAt(set *bitset, start, size uint64) bool {
	n := uint64(0)
	for ; n < size; n++ {
		if !m.buddy.AllocFrameAt(start + n) {
			break
		}
	}
	if n < size {
		for i := uint64(0); i < n; i++ {
			m.buddy.Free(start+i, 0)
		}
		return false
	}
	for i := uint64(0); i < size; i++ {
		set.set(start + i)
	}
	m.held += size
	return true
}

// releaseRandomFrame frees one held frame chosen (approximately) uniformly.
func (m *Memhog) releaseRandomFrame() {
	total := m.buddy.TotalFrames()
	for {
		f := m.rng.Uint64n(total)
		switch {
		case m.movable.get(f):
			m.movable.clear(f)
		case m.unmovable.get(f):
			m.unmovable.clear(f)
		default:
			continue
		}
		m.buddy.Free(f, 0)
		m.held--
		return
	}
}

// Release frees every held frame.
func (m *Memhog) Release() {
	for f := uint64(0); f < m.buddy.TotalFrames() && m.held > 0; f++ {
		if m.movable.get(f) {
			m.movable.clear(f)
		} else if m.unmovable.get(f) {
			m.unmovable.clear(f)
		} else {
			continue
		}
		m.buddy.Free(f, 0)
		m.held--
	}
}

// CompactFor attempts to assemble and allocate a block of 2^order frames
// by migrating movable hog frames out of a candidate region, modeling
// Linux memory compaction on the THS allocation path. Candidate regions
// are scanned in ascending order from a cursor, so back-to-back compacted
// allocations land adjacently — the source of superpage contiguity under
// fragmentation (Sec 7.1). The returned block is already allocated to the
// caller. ok is false when no candidate region (free + movable-only
// occupancy, with enough free memory elsewhere to absorb the migrants)
// exists within the scan budget.
func (m *Memhog) CompactFor(order uint) (frame uint64, ok bool) {
	size := uint64(1) << order
	total := m.buddy.TotalFrames()
	if size > total {
		return 0, false
	}
	regions := total / size
	budget := m.CompactBudget
	if budget == 0 || budget > regions {
		budget = regions
	}
	r := m.compactCursor / size
	for tried := uint64(0); tried < budget; tried++ {
		start := (r % regions) * size
		r++
		if f, ok := m.tryCompactRegion(start, size); ok {
			m.compactCursor = f + size
			if m.compactCursor >= total {
				m.compactCursor = 0
			}
			return f, true
		}
	}
	// Advance past the scanned candidates so the next attempt probes new
	// territory instead of re-failing on the same polluted regions.
	m.compactCursor = (r % regions) * size
	return 0, false
}

// tryCompactRegion migrates the movable frames out of [start, start+size)
// and allocates the region, failing if any occupant is unmovable (pinned
// hog memory or any non-hog allocation: page tables, workload pages).
func (m *Memhog) tryCompactRegion(start, size uint64) (uint64, bool) {
	var movers []uint64
	freeInside := uint64(0)
	for f := start; f < start+size; f++ {
		switch {
		case m.movable.get(f):
			movers = append(movers, f)
		case m.unmovable.get(f):
			return 0, false
		case m.buddy.FrameFree(f):
			freeInside++
		default:
			return 0, false // foreign allocation: not migratable
		}
	}
	// Destination space must exist outside the region.
	if m.buddy.FreeFrames()-freeInside < uint64(len(movers)) {
		return 0, false
	}
	if len(movers) == 0 {
		if m.buddy.AllocBlockAt(start, addr.Log2(size)) {
			return start, true
		}
		return 0, false
	}
	// Pin the region's free frames so migration destinations land
	// elsewhere, then move each hog frame out.
	var pins []uint64
	for f := start; f < start+size; f++ {
		if !m.Owns(f) && m.buddy.AllocFrameAt(f) {
			pins = append(pins, f)
		}
	}
	// Per-page migration can fail (pinned or un-isolatable pages); any
	// failure aborts the region, as Linux's THP compaction does.
	for range movers {
		if m.rng.Float64() < m.MigrateFailProb {
			return 0, false
		}
	}
	// Allocate every destination before freeing any source, so migrants
	// cannot land back inside the region being assembled.
	dests := make([]uint64, len(movers))
	for i := range movers {
		dest, ok := m.buddy.AllocRandomFrame(m.rng)
		if !ok {
			panic("physmem: compaction destination vanished despite free-count check")
		}
		dests[i] = dest
	}
	for i, f := range movers {
		m.movable.clear(f)
		m.movable.set(dests[i])
		m.buddy.Free(f, 0)
		m.Migrated++
	}
	for _, f := range pins {
		m.buddy.Free(f, 0)
	}
	if !m.buddy.AllocBlockAt(start, addr.Log2(size)) {
		panic("physmem: compacted region not allocatable")
	}
	return start, true
}

// bitset is a simple fixed-size bit vector over frame numbers.
type bitset []uint64

func newBitset(n uint64) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i uint64) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) set(i uint64)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i uint64)    { b[i/64] &^= 1 << (i % 64) }

// HeldFrames visits every frame the hog currently holds (movable and
// unmovable); visit returns false to stop. Virtualized experiments use
// this to demand host backing for in-VM memhog memory — a guest's hog
// touches its pages, so the hypervisor must back them.
func (m *Memhog) HeldFrames(visit func(frame uint64) bool) {
	for f := uint64(0); f < m.buddy.TotalFrames(); f++ {
		if m.movable.get(f) || m.unmovable.get(f) {
			if !visit(f) {
				return
			}
		}
	}
}
