package pwc

import (
	"testing"

	"mixtlb/internal/addr"
)

func TestSkipUsesDeepestCachedLevel(t *testing.T) {
	c := New(16)
	// Cold: nothing cached, nothing skipped.
	if got := c.Skip(0x1000, 3); got != 0 {
		t.Fatalf("cold Skip = %d, want 0", got)
	}
	// A completed 4-access (4KB) walk caches PML4E, PDPTE, and PDE.
	c.Fill(0x1000, 4)
	// A sibling 4KB page under the same PD: PDE hit skips 3 accesses.
	if got := c.Skip(0x2000, 3); got != 3 {
		t.Errorf("sibling-page Skip = %d, want 3", got)
	}
	// Same PDPT but a different PD (2MB apart): PDPTE hit skips 2.
	if got := c.Skip(0x1000+addr.V(addr.Size2M), 3); got != 2 {
		t.Errorf("sibling-PD Skip = %d, want 2", got)
	}
	// Same PML4 entry but a different PDPT entry (1GB apart): skip 1.
	if got := c.Skip(0x1000+addr.V(addr.Size1G), 3); got != 1 {
		t.Errorf("sibling-PDPT Skip = %d, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats: hits=%d misses=%d, want 3/1", st.Hits, st.Misses)
	}
	if st.SkippedRefs != 3+2+1 {
		t.Errorf("skipped refs = %d, want 6", st.SkippedRefs)
	}
}

func TestSkipCappedByWalkLength(t *testing.T) {
	c := New(16)
	c.Fill(0x1000, 4)
	// A 2MB walk (3 accesses) whose leaf is the PDE: the PDE cache must
	// not over-skip past the leaf, so maxSkip=2 caps at the PDPTE hit.
	if got := c.Skip(0x2000, 2); got != 2 {
		t.Errorf("capped Skip = %d, want 2", got)
	}
	// A 1GB walk (2 accesses): only the PML4E may be skipped.
	if got := c.Skip(0x2000, 1); got != 1 {
		t.Errorf("capped Skip = %d, want 1", got)
	}
}

func TestFillCachesOnlyTraversedLevels(t *testing.T) {
	c := New(16)
	// A 2MB walk (3 accesses) traverses PML4 and PDPT as pointers; the PD
	// entry is its leaf and must not enter the PDE cache.
	c.Fill(0x40000000, 3)
	if got := c.Skip(0x40000000+addr.V(addr.Size2M), 3); got != 2 {
		t.Errorf("after 2MB fill, Skip = %d, want 2 (PDPTE)", got)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := New(16)
	c.Fill(0x1000, 4)
	c.Invalidate(0x1000)
	if got := c.Skip(0x2000, 3); got != 0 {
		t.Errorf("post-invalidate Skip = %d, want 0", got)
	}
	c.Fill(0x1000, 4)
	c.Flush()
	if got := c.Skip(0x2000, 3); got != 0 {
		t.Errorf("post-flush Skip = %d, want 0", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	// Three distinct PD prefixes into a 2-entry PDE cache: the oldest
	// (first) must be evicted, the two youngest retained. All three share
	// one PDPT entry, so the evicted prefix falls back to a skip-2 PDPTE
	// hit rather than the full skip-3.
	for i := 0; i < 3; i++ {
		c.Fill(addr.V(i)<<21, 4)
	}
	if got := c.Skip(0, 3); got != 2 {
		t.Errorf("evicted PDE prefix: skip %d, want 2 (PDPTE fallback)", got)
	}
	for i := 1; i < 3; i++ {
		if got := c.Skip(addr.V(i)<<21, 3); got != 3 {
			t.Errorf("retained prefix %d: skip %d, want 3", i, got)
		}
	}
}

func TestDefaultEntries(t *testing.T) {
	if got := New(0).Entries(); got != DefaultEntries {
		t.Errorf("New(0).Entries() = %d, want %d", got, DefaultEntries)
	}
}
