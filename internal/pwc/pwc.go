// Package pwc models x86-style paging-structure caches (Intel PSCs, AMD
// page-walk caches): small per-level caches of PML4E/PDPTE/PDE entries
// keyed by the virtual-address prefix, which let the hardware walker skip
// the upper radix levels of a page-table walk. A PDE hit lets a 4KB walk
// read only the final PTE — one memory reference instead of four.
//
// The paper's baseline walkers are uncached; this model exists to study
// how much of the TLB-design gap walk caches close. They shrink the *cost*
// of misses, never their number, following the MMU-cache literature the
// paper cites (Barr et al., Bhattacharjee). Whether a design carries
// paging-structure caches is part of its mmu.DesignSpec; the MMU consults
// the cache on its fused WalkInto path and drops the charged upper-level
// PTE references a hit short-circuits.
package pwc

import (
	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

// NumLevels is how many non-leaf radix levels the default x86-64
// descriptor caches: PML4 entries (skip 1 access), PDPT entries (skip 2),
// PD entries (skip 3). Descriptor-aware callers size from NewISA instead:
// a cache always has Depth-1 levels.
const NumLevels = 3

// DefaultEntries is the per-level capacity when none is configured; real
// PSCs have 2-32 entries per level.
const DefaultEntries = 16

// Stats counts cache activity. Hits and Misses count deepest-level probe
// outcomes (one per walk consulted); SkippedRefs counts the upper-level
// PTE memory references those hits short-circuited.
type Stats struct {
	Hits        uint64
	Misses      uint64
	SkippedRefs uint64
	Fills       uint64
}

// Cache is one set of paging-structure caches, private to one walker. It
// must not be shared across address spaces (VA prefixes would alias).
// levels[0] caches root entries (skip 1), levels[1] the next level down
// (skip 2), and so on through the deepest non-leaf level; shifts holds
// the VA prefix shift keying each. On the default x86-64 radix that is
// three levels with shifts 39/30/21; a 5-level LA57 radix caches four
// with shifts 48/39/30/21, and 3-level Sv39 two with 30/21.
type Cache struct {
	levels []prefixCache
	shifts []uint
	stats  Stats
}

// New builds a cache for the default x86-64 radix with the given entries
// per level (fully associative, LRU). entriesPerLevel <= 0 selects
// DefaultEntries.
func New(entriesPerLevel int) *Cache {
	return NewISA(entriesPerLevel, isa.Default())
}

// NewISA builds a cache sized from a descriptor's radix: one prefix cache
// per non-leaf level, deepest-first probe order, exactly as the x86-64
// special case behaved before ISAs were parameterized.
func NewISA(entriesPerLevel int, d *isa.Descriptor) *Cache {
	if entriesPerLevel <= 0 {
		entriesPerLevel = DefaultEntries
	}
	depth := d.Depth()
	c := &Cache{
		levels: make([]prefixCache, depth-1),
		shifts: make([]uint, depth-1),
	}
	for i := range c.levels {
		c.levels[i].init(entriesPerLevel)
		// levels[i] caches entries of radix level depth-i, whose VA
		// prefix starts where level depth-i's index does.
		c.shifts[i] = d.LevelShift(depth - i)
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (cache contents are retained).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Skip returns how many leading walk accesses a lookup for va can
// short-circuit: the deepest cached level wins. maxSkip caps it — a 2MB
// walk has only 3 accesses, so a PDE hit cannot skip more than 2, and the
// final (leaf) access is never skipped.
func (c *Cache) Skip(va addr.V, maxSkip int) int {
	for lvl := len(c.levels) - 1; lvl >= 0; lvl-- {
		if lvl+1 > maxSkip {
			continue
		}
		if c.levels[lvl].lookup(uint64(va) >> c.shifts[lvl]) {
			c.stats.Hits++
			c.stats.SkippedRefs += uint64(lvl + 1)
			return lvl + 1
		}
	}
	c.stats.Misses++
	return 0
}

// Fill records the traversed non-leaf levels of a completed walk. walkLen
// is the walk's access count (on x86-64: 4 for a 4KB walk, 3 for 2MB, 2
// for 1GB): a walk of length L traversed L-1 levels as pointers, root
// first.
func (c *Cache) Fill(va addr.V, walkLen int) {
	c.stats.Fills++
	for lvl := 0; lvl < walkLen-1 && lvl < len(c.levels); lvl++ {
		c.levels[lvl].insert(uint64(va) >> c.shifts[lvl])
	}
}

// Invalidate drops every cached entry covering va: page-table updates must
// invalidate paging-structure caches exactly as they invalidate TLBs.
func (c *Cache) Invalidate(va addr.V) {
	for lvl := range c.levels {
		c.levels[lvl].invalidate(uint64(va) >> c.shifts[lvl])
	}
}

// Flush empties the cache (context switch without PCIDs).
func (c *Cache) Flush() {
	for i := range c.levels {
		c.levels[i].flush()
	}
}

// Entries reports the per-level capacity.
func (c *Cache) Entries() int { return len(c.levels[0].keys) }

// prefixCache is a tiny fully-associative LRU cache of VA prefixes.
type prefixCache struct {
	keys  []uint64
	valid []bool
	stamp []uint64
	clock uint64
}

func (c *prefixCache) init(entries int) {
	c.keys = make([]uint64, entries)
	c.valid = make([]bool, entries)
	c.stamp = make([]uint64, entries)
}

func (c *prefixCache) lookup(key uint64) bool {
	c.clock++
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.stamp[i] = c.clock
			return true
		}
	}
	return false
}

func (c *prefixCache) insert(key uint64) {
	c.clock++
	victim, oldest := 0, ^uint64(0)
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.stamp[i] = c.clock
			return
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.stamp[i] < oldest {
			victim, oldest = i, c.stamp[i]
		}
	}
	c.keys[victim], c.valid[victim], c.stamp[victim] = key, true, c.clock
}

func (c *prefixCache) invalidate(key uint64) {
	for i := range c.keys {
		if c.valid[i] && c.keys[i] == key {
			c.valid[i] = false
		}
	}
}

func (c *prefixCache) flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}
