package pwc

import (
	"testing"

	"mixtlb/internal/addr"
	"mixtlb/internal/isa"
)

// TestISADepthSizing: a cache has Depth-1 prefix levels, and its deepest
// level skips Depth-1 accesses of a full walk.
func TestISADepthSizing(t *testing.T) {
	cases := []struct {
		name    string
		levels  int
		maxSkip int
	}{
		{"x86-64", 3, 3},
		{"x86-64-la57", 4, 4},
		{"sv39", 2, 2},
		{"sv48", 3, 3},
	}
	for _, tc := range cases {
		d, err := isa.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		c := NewISA(8, d)
		if len(c.levels) != tc.levels {
			t.Fatalf("%s: %d levels, want %d", tc.name, len(c.levels), tc.levels)
		}
		va := addr.V(0x123456789000) & addr.V(d.VAMask())
		// A full-depth fill makes the deepest level hit, skipping all
		// non-leaf accesses of the next walk.
		c.Fill(va, d.Depth())
		if got := c.Skip(va, d.Depth()-1); got != tc.maxSkip {
			t.Fatalf("%s: Skip = %d, want %d", tc.name, got, tc.maxSkip)
		}
		// A different root prefix misses everywhere.
		far := va ^ addr.V(1<<(d.VABits-1))
		if got := c.Skip(far, d.Depth()-1); got != 0 {
			t.Fatalf("%s: unrelated prefix skipped %d", tc.name, got)
		}
	}
}

// TestDefaultMatchesNewISA: New and NewISA(default) are the same cache.
func TestDefaultMatchesNewISA(t *testing.T) {
	a, b := New(4), NewISA(4, isa.Default())
	if len(a.levels) != len(b.levels) {
		t.Fatal("level counts differ")
	}
	for i := range a.shifts {
		if a.shifts[i] != b.shifts[i] {
			t.Fatalf("shift[%d]: %d vs %d", i, a.shifts[i], b.shifts[i])
		}
	}
	if a.shifts[0] != 39 || a.shifts[1] != 30 || a.shifts[2] != 21 {
		t.Fatalf("default shifts = %v", a.shifts)
	}
}
